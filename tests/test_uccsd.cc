/**
 * @file
 * Unit tests for the UCCSD generator, headlined by the exact
 * reproduction of Table I: parameter counts, Pauli string counts,
 * and gate/CNOT counts of the chain-synthesized circuits for all
 * nine benchmark molecules.
 */

#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "chem/molecules.hh"
#include "compiler/chain_synthesis.hh"
#include "sim/statevector.hh"

using namespace qcc;

namespace {

/** (qubits, electrons) pairs for the Table I benchmarks. */
struct TableRow
{
    const char *name;
    unsigned qubits, electrons;
    unsigned nPauli, nParam, nGates, nCnots;
};

const std::vector<TableRow> tableI = {
    {"H2", 4, 2, 12, 3, 150, 56},
    {"LiH", 6, 2, 40, 8, 610, 280},
    {"NaH", 8, 2, 84, 15, 1476, 768},
    {"HF", 10, 8, 144, 24, 2856, 1616},
    {"BeH2", 12, 4, 640, 92, 13704, 8064},
    {"H2O", 12, 8, 640, 92, 13704, 8064},
    {"BH3", 14, 6, 1488, 204, 34280, 21072},
    {"NH3", 14, 8, 1488, 204, 34280, 21072},
    {"CH4", 16, 8, 2688, 360, 66312, 42368},
};

} // namespace

class UccsdTableI : public ::testing::TestWithParam<TableRow>
{
};

TEST_P(UccsdTableI, ReproducesPaperCosts)
{
    const TableRow &row = GetParam();
    Ansatz a = buildUccsd(row.qubits / 2, row.electrons);
    EXPECT_EQ(a.nQubits, row.qubits) << row.name;
    EXPECT_EQ(a.nParams, row.nParam) << row.name;
    EXPECT_EQ(a.numStrings(), row.nPauli) << row.name;

    std::vector<double> zeros(a.nParams, 0.0);
    Circuit c = synthesizeChainCircuit(a, zeros, true);
    // CNOT counts (the paper's cost metric) must match exactly;
    // total gate counts agree to within 0.1% (the original Qiskit
    // Aqua toolchain differs by 2-4 single-qubit gates on three of
    // the nine molecules; see EXPERIMENTS.md).
    EXPECT_EQ(c.cnotCount(), row.nCnots) << row.name;
    EXPECT_EQ(chainCnotCount(a), row.nCnots) << row.name;
    EXPECT_NEAR(double(c.totalGates()), double(row.nGates),
                std::max(2.0, 0.001 * row.nGates))
        << row.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableI, UccsdTableI, ::testing::ValuesIn(tableI),
    [](const ::testing::TestParamInfo<TableRow> &info) {
        return std::string(info.param.name);
    });

TEST(Uccsd, SinglesHaveTwoStringsDoublesEight)
{
    Ansatz a = buildUccsd(3, 2); // LiH-sized
    std::vector<unsigned> perParam(a.nParams, 0);
    for (const auto &r : a.rotations)
        ++perParam[r.param];
    for (unsigned k = 0; k < a.nParams; ++k) {
        if (a.excitations[k].kind == Excitation::Kind::Single) {
            EXPECT_EQ(perParam[k], 2u);
        } else {
            EXPECT_EQ(perParam[k], 8u);
        }
    }
}

TEST(Uccsd, StringCoefficientsAreHalfOrEighth)
{
    Ansatz a = buildUccsd(2, 2);
    for (const auto &r : a.rotations) {
        double c = std::abs(r.coeff);
        if (a.excitations[r.param].kind == Excitation::Kind::Single) {
            EXPECT_NEAR(c, 0.5, 1e-12);
        } else {
            EXPECT_NEAR(c, 0.125, 1e-12);
        }
    }
}

TEST(Uccsd, StringsOfOneParameterCommute)
{
    // The Pauli terms of a single excitation generator commute, so
    // applying them sequentially is exact (no Trotter error within
    // one parameter).
    Ansatz a = buildUccsd(3, 2);
    for (unsigned k = 0; k < a.nParams; ++k) {
        std::vector<const PauliRotation *> rs;
        for (const auto &r : a.rotations)
            if (r.param == k)
                rs.push_back(&r);
        for (size_t i = 0; i < rs.size(); ++i)
            for (size_t j = i + 1; j < rs.size(); ++j)
                EXPECT_TRUE(rs[i]->string.commutesWith(rs[j]->string));
    }
}

TEST(Uccsd, ZeroParametersGiveHartreeFockState)
{
    Ansatz a = buildUccsd(2, 2);
    std::vector<double> zeros(a.nParams, 0.0);
    Statevector sv(a.nQubits, a.hfMask);
    for (const auto &r : a.rotations)
        sv.applyPauliRotation(0.0 * r.coeff, r.string);
    EXPECT_NEAR(std::abs(sv.amplitudes()[a.hfMask]), 1.0, 1e-12);
}

TEST(Uccsd, PreservesParticleNumber)
{
    // The UCCSD state must stay in the N-electron sector: total
    // number operator expectation unchanged for random parameters.
    Ansatz a = buildUccsd(3, 2);
    std::vector<double> params(a.nParams);
    for (size_t i = 0; i < params.size(); ++i)
        params[i] = 0.1 * double(i + 1) / params.size();

    Statevector sv(a.nQubits, a.hfMask);
    for (const auto &r : a.rotations)
        sv.applyPauliRotation(params[r.param] * r.coeff, r.string);

    // N = sum_p (I - Z_p)/2.
    double n = 0.0;
    for (unsigned q = 0; q < a.nQubits; ++q)
        n += 0.5 * (1.0 -
                    sv.expectation(
                        PauliString::single(a.nQubits, q, PauliOp::Z)));
    EXPECT_NEAR(n, 2.0, 1e-9);
}

TEST(Uccsd, SinglesStringsAreXZChainY)
{
    // A single excitation i->a yields two strings with X/Y endpoints
    // and a Z chain strictly between.
    Ansatz a = buildUccsd(3, 2); // spatial 0 occ; 1,2 virt
    const auto &r0 = a.rotations[0];
    ASSERT_EQ(a.excitations[r0.param].kind, Excitation::Kind::Single);
    unsigned i = a.excitations[r0.param].so[0];
    unsigned v = a.excitations[r0.param].so[1];
    EXPECT_TRUE(r0.string.op(i) == PauliOp::X ||
                r0.string.op(i) == PauliOp::Y);
    EXPECT_TRUE(r0.string.op(v) == PauliOp::X ||
                r0.string.op(v) == PauliOp::Y);
    for (unsigned q = i + 1; q < v; ++q)
        EXPECT_EQ(r0.string.op(q), PauliOp::Z);
}
