/**
 * @file
 * common/json unit tests — the \uXXXX escape paths in particular.
 * Astral-plane characters travel through JSON as UTF-16 surrogate
 * pairs; the parser must decode a pair to one 4-byte UTF-8 sequence
 * and reject unpaired surrogates with a JsonError naming the offset
 * (silently emitting them used to corrupt round-tripped documents).
 */

#include <gtest/gtest.h>

#include "common/json.hh"

using namespace qcc;

namespace {

std::string
parsedString(const std::string &doc)
{
    const JsonValue v = JsonValue::parse(doc);
    EXPECT_TRUE(v.isString());
    return v.text;
}

} // namespace

TEST(Json, BmpUnicodeEscapesDecodeToUtf8)
{
    EXPECT_EQ(parsedString(R"("A")"), "A");
    EXPECT_EQ(parsedString(R"("\u00e9")"), "\xC3\xA9");   // é
    EXPECT_EQ(parsedString(R"("\u20ac")"), "\xE2\x82\xAC"); // €
}

TEST(Json, SurrogatePairDecodesToFourByteUtf8)
{
    // U+1D306 TETRAGRAM FOR CENTRE.
    EXPECT_EQ(parsedString(R"("\ud834\udf06")"),
              "\xF0\x9D\x8C\x86");
    // U+10400 DESERET CAPITAL LETTER LONG I — nonzero payload in
    // both halves.
    EXPECT_EQ(parsedString(R"("\ud801\udc00")"),
              "\xF0\x90\x90\x80");
    // Uppercase hex digits work too.
    EXPECT_EQ(parsedString(R"("\uD834\uDF06")"),
              "\xF0\x9D\x8C\x86");
}

TEST(Json, SurrogatePairSurvivesDumpRoundTrip)
{
    const JsonValue v =
        JsonValue::parse(R"({"s": "\ud834\udf06"})");
    const JsonValue back = JsonValue::parse(v.dump());
    const JsonValue *s = back.find("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->text, "\xF0\x9D\x8C\x86");
}

TEST(Json, LoneHighSurrogateIsAnErrorNamingTheOffset)
{
    try {
        JsonValue::parse(R"("ab\ud834xy")");
        FAIL() << "lone high surrogate accepted";
    } catch (const JsonError &e) {
        EXPECT_EQ(e.offset(), 3u); // the backslash of the escape
    }
}

TEST(Json, LoneLowSurrogateIsAnErrorNamingTheOffset)
{
    try {
        JsonValue::parse(R"("\udc00")");
        FAIL() << "lone low surrogate accepted";
    } catch (const JsonError &e) {
        EXPECT_EQ(e.offset(), 1u);
    }
}

TEST(Json, HighSurrogatePairedWithNonLowSurrogateIsAnError)
{
    // A is a valid escape but not a low surrogate.
    EXPECT_THROW(JsonValue::parse(R"("\ud834A")"), JsonError);
    // Two high surrogates in a row.
    EXPECT_THROW(JsonValue::parse(R"("\ud834\ud834")"), JsonError);
}

TEST(Json, TruncatedSurrogatePairIsAnError)
{
    EXPECT_THROW(JsonValue::parse(R"("\ud834")"), JsonError);
    EXPECT_THROW(JsonValue::parse(R"("\ud834\u")"), JsonError);
    EXPECT_THROW(JsonValue::parse(R"("\ud834\udf0")"), JsonError);
}

TEST(Json, OrdinaryEscapesStillWork)
{
    EXPECT_EQ(parsedString(R"("a\nb\tc\"d\\e\/f")"),
              "a\nb\tc\"d\\e/f");
    EXPECT_THROW(JsonValue::parse(R"("\q")"), JsonError);
}
