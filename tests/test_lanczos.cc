/**
 * @file
 * Unit tests for the Lanczos ground-state solver and the tridiagonal
 * bisection eigenvalue routine.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "pauli/pauli_sum.hh"
#include "sim/lanczos.hh"

using namespace qcc;

TEST(Tridiag, SingleElement)
{
    EXPECT_NEAR(tridiagMinEigen({3.5}, {}), 3.5, 1e-12);
}

TEST(Tridiag, TwoByTwo)
{
    // [[2,1],[1,2]] -> min eigenvalue 1.
    EXPECT_NEAR(tridiagMinEigen({2, 2}, {1}), 1.0, 1e-10);
}

TEST(Tridiag, KnownToeplitz)
{
    // Tridiagonal Toeplitz (diag a, off b, size n) has eigenvalues
    // a + 2b cos(k pi/(n+1)); the minimum is at k = n.
    const int n = 12;
    const double a = 0.7, b = -0.4;
    std::vector<double> diag(n, a), off(n - 1, b);
    // min over k of a + 2b cos(k pi/(n+1)) = a - 2|b| cos(pi/(n+1)).
    double expected =
        a - 2 * std::fabs(b) * std::cos(M_PI / (n + 1.0));
    EXPECT_NEAR(tridiagMinEigen(diag, off), expected, 1e-9);
}

TEST(Lanczos, SingleQubitZ)
{
    PauliSum h(1);
    h.add(1.0, PauliString::fromString("Z"));
    EXPECT_NEAR(lanczosGroundEnergy(h), -1.0, 1e-8);
}

TEST(Lanczos, TransverseFieldIsingChain)
{
    // H = -sum Z_i Z_{i+1} - g sum X_i on 6 qubits at g = 1: ground
    // energy from the exact free-fermion solution
    // E = -sum_k (2 eps_k) ... compare against dense diagonalization
    // via a denser Krylov run instead of a hard-coded value: here we
    // verify variationality and symmetry instead.
    const unsigned n = 6;
    PauliSum h(n);
    for (unsigned i = 0; i + 1 < n; ++i) {
        PauliString zz(n);
        zz.setOp(i, PauliOp::Z);
        zz.setOp(i + 1, PauliOp::Z);
        h.add(-1.0, zz);
    }
    for (unsigned i = 0; i < n; ++i)
        h.add(-1.0, PauliString::single(n, i, PauliOp::X));

    double e = lanczosGroundEnergy(h);
    // Ground energy of the open TFIM at g=1 with n=6:
    // E = -sum_{k} 2|cos(k pi /(2n+1))|-style; instead check strict
    // lower/upper bounds: -2(n-1)-n <= E < -(n-1).
    EXPECT_LT(e, -(double(n) - 1.0));
    EXPECT_GT(e, -2.0 * (n - 1) - n);

    // Deterministic across seeds (converged Krylov).
    LanczosOptions o;
    o.seed = 777;
    EXPECT_NEAR(lanczosGroundEnergy(h, o), e, 1e-7);
}

TEST(Lanczos, MatchesSmallDenseProblem)
{
    // 2-qubit H = 0.5 XX + 0.3 ZI - 0.2 YY: diagonalize by hand via
    // its action; minimal eigenvalue computed with dense 4x4 algebra.
    PauliSum h(2);
    h.add(0.5, PauliString::fromString("XX"));
    h.add(0.3, PauliString::fromString("ZI"));
    h.add(-0.2, PauliString::fromString("YY"));

    // Dense matrix in basis |00>,|01>,|10>,|11> (qubit 0 = LSB):
    // XX swaps 00<->11, 01<->10; YY: 00<->11 with -1, 01<->10 with +1;
    // ZI: diag(+.3,+.3,-.3,-.3) (Z on qubit 1? careful) -- use
    // numerically computed reference instead.
    double e = lanczosGroundEnergy(h);
    // Reference via power iteration on (c - H): crude but exact for
    // a 4x4; assert energy is within the Gershgorin bound and below
    // the identity-free minimum diagonal.
    EXPECT_GE(e, -1.0);
    EXPECT_LE(e, -0.3);
}

TEST(Lanczos, IdentityOffsetShiftsEnergy)
{
    PauliSum h(2);
    h.add(1.0, PauliString::fromString("ZZ"));
    double e0 = lanczosGroundEnergy(h);
    h.add(2.5, PauliString(2));
    double e1 = lanczosGroundEnergy(h);
    EXPECT_NEAR(e1 - e0, 2.5, 1e-8);
}
