/**
 * @file
 * Single-seed reproducibility: every stochastic path in the library
 * (shot sampling, SPSA, the yield Monte-Carlo) must replay
 * bit-for-bit from one master seed. The core check runs a full
 * sampled VQE twice and diffs the serialized traces — the
 * machine-readable record is the reproducibility contract, so it is
 * what gets compared.
 */

#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "arch/grid.hh"
#include "arch/yield.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "common/optimize.hh"
#include "common/rng.hh"
#include "ferm/hamiltonian.hh"
#include "vqe/driver.hh"

using namespace qcc;

namespace {

struct Fixture
{
    MolecularProblem prob;
    Ansatz ansatz;
};

const Fixture &
h2()
{
    static const Fixture fix = [] {
        setVerbose(false);
        MolecularProblem prob =
            buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
        Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
        return Fixture{std::move(prob), std::move(a)};
    }();
    return fix;
}

VqeDriverOptions
sampledOpts()
{
    VqeDriverOptions o;
    o.mode = EvalMode::Sampled;
    o.method = VqeDriverOptions::Method::Spsa;
    o.spsaIter = 40;
    o.sampling.shots = 2048;
    return o;
}

} // namespace

TEST(Determinism, SampledVqeTraceReplaysExactly)
{
    // Run the whole stochastic pipeline twice; the serialized traces
    // (every energy, variance, shot count, in order) must be equal
    // byte for byte.
    VqeDriver d1(h2().prob.hamiltonian, h2().ansatz, sampledOpts());
    VqeResult r1 = d1.run();
    VqeDriver d2(h2().prob.hamiltonian, h2().ansatz, sampledOpts());
    VqeResult r2 = d2.run();

    EXPECT_EQ(r1.energy, r2.energy);
    EXPECT_EQ(r1.params, r2.params);
    EXPECT_EQ(d1.shotsSpent(), d2.shotsSpent());
    EXPECT_EQ(d1.trace().json(), d2.trace().json());
    ASSERT_FALSE(d1.trace().points.empty());
}

TEST(Determinism, DifferentSeedsProduceDifferentTraces)
{
    VqeDriverOptions a = sampledOpts();
    VqeDriverOptions b = sampledOpts();
    b.seed = a.seed + 1;
    VqeDriver d1(h2().prob.hamiltonian, h2().ansatz, a);
    d1.run();
    VqeDriver d2(h2().prob.hamiltonian, h2().ansatz, b);
    d2.run();
    EXPECT_NE(d1.trace().json(), d2.trace().json());
}

TEST(Determinism, GradientDescentModeTraceReplaysExactly)
{
    VqeDriverOptions o = sampledOpts();
    o.method = VqeDriverOptions::Method::GradientDescent;
    o.maxIter = 8;
    VqeDriver d1(h2().prob.hamiltonian, h2().ansatz, o);
    d1.run();
    VqeDriver d2(h2().prob.hamiltonian, h2().ansatz, o);
    d2.run();
    EXPECT_EQ(d1.trace().json(), d2.trace().json());
}

TEST(Determinism, SpsaReproducibleFromOptionsSeed)
{
    auto rosenbrock = [](const std::vector<double> &x) {
        double s = 0.0;
        for (size_t i = 0; i + 1 < x.size(); ++i)
            s += 100.0 * (x[i + 1] - x[i] * x[i]) *
                     (x[i + 1] - x[i] * x[i]) +
                 (1.0 - x[i]) * (1.0 - x[i]);
        return s;
    };
    SpsaOptions so;
    so.maxIter = 50;
    so.seed = deriveSeed(99);
    OptimizeResult a = spsa(rosenbrock, {0.0, 0.0}, so);
    OptimizeResult b = spsa(rosenbrock, {0.0, 0.0}, so);
    EXPECT_EQ(a.fun, b.fun);
    EXPECT_EQ(a.x, b.x);
}

TEST(Determinism, YieldMonteCarloReproducibleFromDerivedSeed)
{
    CouplingGraph g = makeGrid17Q();
    auto freq = allocateFrequencies(g);
    Rng r1(deriveSeed(77)), r2(deriveSeed(77));
    double y1 = simulateYield(g, freq, 0.04, 2000, r1);
    double y2 = simulateYield(g, freq, 0.04, 2000, r2);
    EXPECT_EQ(y1, y2);
}

TEST(Determinism, DerivedStreamsAreStableAndDistinct)
{
    // deriveStream is a pure function: same inputs, same stream;
    // neighboring streams decorrelate (different values).
    EXPECT_EQ(deriveStream(2021, 5), deriveStream(2021, 5));
    EXPECT_NE(deriveStream(2021, 5), deriveStream(2021, 6));
    EXPECT_NE(deriveStream(2021, 5), deriveStream(2022, 5));
    // deriveSeed anchors at the process-wide master seed.
    EXPECT_EQ(deriveSeed(5), deriveStream(globalSeed(), 5));
}

TEST(Determinism, TraceJsonCarriesRunMetadata)
{
    VqeDriver d(h2().prob.hamiltonian, h2().ansatz, sampledOpts());
    d.run();
    const std::string doc = d.trace().json();
    EXPECT_NE(doc.find("\"mode\": \"sampled\""), std::string::npos);
    EXPECT_NE(doc.find("\"optimizer\": \"spsa\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"points\""), std::string::npos);
    EXPECT_NE(doc.find("\"variance\""), std::string::npos);
    EXPECT_NE(doc.find("\"shots\""), std::string::npos);
}
