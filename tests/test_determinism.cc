/**
 * @file
 * Single-seed reproducibility: every stochastic path in the library
 * (shot sampling, SPSA, the yield Monte-Carlo) must replay
 * bit-for-bit from one master seed. The core check runs a full
 * sampled VQE twice through the qcc::Experiment facade and diffs the
 * serialized traces — the machine-readable record is the
 * reproducibility contract, so it is what gets compared.
 */

#include <gtest/gtest.h>

#include "api/experiment.hh"
#include "arch/grid.hh"
#include "arch/yield.hh"
#include "common/logging.hh"
#include "common/optimize.hh"
#include "common/rng.hh"

using namespace qcc;

namespace {

ExperimentBuilder
sampledH2()
{
    setVerbose(false);
    ExperimentBuilder b = Experiment::builder();
    b.molecule("H2").bond(0.74).reference(false);
    b.mode("sampled").optimizer("spsa").spsaIter(40).shots(2048);
    return b;
}

} // namespace

TEST(Determinism, SampledVqeTraceReplaysExactly)
{
    // Run the whole stochastic pipeline twice; the serialized traces
    // (every energy, variance, shot count, in order) must be equal
    // byte for byte.
    ExperimentResult r1 = sampledH2().build().run();
    ExperimentResult r2 = sampledH2().build().run();

    EXPECT_EQ(r1.energy(), r2.energy());
    EXPECT_EQ(r1.vqe.params, r2.vqe.params);
    EXPECT_EQ(r1.shots, r2.shots);
    EXPECT_EQ(r1.trace.json(), r2.trace.json());
    ASSERT_FALSE(r1.trace.points.empty());
}

TEST(Determinism, DifferentSeedsProduceDifferentTraces)
{
    ExperimentResult r1 =
        sampledH2().seed(globalSeed()).build().run();
    ExperimentResult r2 =
        sampledH2().seed(globalSeed() + 1).build().run();
    EXPECT_NE(r1.trace.json(), r2.trace.json());
}

TEST(Determinism, GradientDescentModeTraceReplaysExactly)
{
    ExperimentBuilder b = sampledH2();
    b.optimizer("gd").maxIter(8);
    ExperimentResult r1 = b.build().run();
    ExperimentResult r2 = b.build().run();
    EXPECT_EQ(r1.trace.json(), r2.trace.json());
}

TEST(Determinism, SpecReplayReproducesRun)
{
    // The resolved spec a result carries is the replay recipe: a
    // second experiment built from its JSON round-trip must replay
    // the run bit-for-bit.
    ExperimentResult r1 = sampledH2().build().run();
    ExperimentSpec replay =
        ExperimentSpec::fromJson(r1.spec.json());
    ExperimentResult r2 = Experiment(replay).run();
    EXPECT_EQ(r1.energy(), r2.energy());
    EXPECT_EQ(r1.trace.json(), r2.trace.json());
}

TEST(Determinism, SpsaReproducibleFromOptionsSeed)
{
    auto rosenbrock = [](const std::vector<double> &x) {
        double s = 0.0;
        for (size_t i = 0; i + 1 < x.size(); ++i)
            s += 100.0 * (x[i + 1] - x[i] * x[i]) *
                     (x[i + 1] - x[i] * x[i]) +
                 (1.0 - x[i]) * (1.0 - x[i]);
        return s;
    };
    SpsaOptions so;
    so.maxIter = 50;
    so.seed = deriveSeed(99);
    OptimizeResult a = spsa(rosenbrock, {0.0, 0.0}, so);
    OptimizeResult b = spsa(rosenbrock, {0.0, 0.0}, so);
    EXPECT_EQ(a.fun, b.fun);
    EXPECT_EQ(a.x, b.x);
}

TEST(Determinism, YieldMonteCarloReproducibleFromDerivedSeed)
{
    CouplingGraph g = makeGrid17Q();
    auto freq = allocateFrequencies(g);
    Rng r1(deriveSeed(77)), r2(deriveSeed(77));
    double y1 = simulateYield(g, freq, 0.04, 2000, r1);
    double y2 = simulateYield(g, freq, 0.04, 2000, r2);
    EXPECT_EQ(y1, y2);
}

TEST(Determinism, DerivedStreamsAreStableAndDistinct)
{
    // deriveStream is a pure function: same inputs, same stream;
    // neighboring streams decorrelate (different values).
    EXPECT_EQ(deriveStream(2021, 5), deriveStream(2021, 5));
    EXPECT_NE(deriveStream(2021, 5), deriveStream(2021, 6));
    EXPECT_NE(deriveStream(2021, 5), deriveStream(2022, 5));
    // deriveSeed anchors at the process-wide master seed.
    EXPECT_EQ(deriveSeed(5), deriveStream(globalSeed(), 5));
}

TEST(Determinism, TraceJsonCarriesRunMetadata)
{
    ExperimentResult r = sampledH2().build().run();
    const std::string doc = r.trace.json();
    EXPECT_NE(doc.find("\"mode\": \"sampled\""), std::string::npos);
    EXPECT_NE(doc.find("\"optimizer\": \"spsa\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"points\""), std::string::npos);
    EXPECT_NE(doc.find("\"variance\""), std::string::npos);
    EXPECT_NE(doc.find("\"shots\""), std::string::npos);
}
