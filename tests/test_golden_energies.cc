/**
 * @file
 * Golden-value regression suite: the chemistry numbers this repo
 * reproduces, pinned as hard-coded constants with explicit
 * tolerances. Hartree-Fock and FCI energies are deterministic
 * functions of the molecule/basis pipeline, so any refactor of the
 * integrals, SCF, active-space, Jordan-Wigner, simulator, or VQE
 * layers that silently shifts the chemistry fails here first.
 *
 * References: H2/STO-3G at 0.74 A has RHF = -1.11676 Ha and
 * FCI = -1.13728 Ha (standard textbook values, cf. the paper's
 * Table 1 molecule list); the LiH values pin this repo's 6-qubit
 * (3-orbital active space) problem at 1.6 A. Golden constants were
 * captured from the seeded implementation and agree with the
 * literature digits quoted above.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "ferm/hamiltonian.hh"
#include "sim/lanczos.hh"
#include "vqe/driver.hh"
#include "vqe/vqe.hh"

using namespace qcc;

namespace {

// Pinned reference energies (Hartree).
constexpr double kH2HartreeFock = -1.116759312896;
constexpr double kH2Fci = -1.137283837576;
constexpr double kLiHHartreeFock = -7.860439103757;
constexpr double kLiHFci = -7.879466240336;

// Deterministic pipeline output: tight pin, far below any physical
// significance but loose enough for cross-platform libm drift.
constexpr double kPinTol = 1e-6;
// Optimizer-terminated results: driven by convergence tolerances.
constexpr double kVqeTol = 2e-6;
// Chemical accuracy, the paper's end-to-end bar.
constexpr double kChemicalAccuracy = 1.6e-3;

const MolecularProblem &
h2()
{
    static const MolecularProblem prob = [] {
        setVerbose(false);
        return buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    }();
    return prob;
}

const MolecularProblem &
lih()
{
    static const MolecularProblem prob = [] {
        setVerbose(false);
        return buildMolecularProblem(benchmarkMolecule("LiH"), 1.6);
    }();
    return prob;
}

} // namespace

TEST(GoldenEnergies, H2HartreeFock)
{
    EXPECT_NEAR(h2().hartreeFockEnergy, kH2HartreeFock, kPinTol);
}

TEST(GoldenEnergies, H2Fci)
{
    EXPECT_NEAR(lanczosGroundEnergy(h2().hamiltonian), kH2Fci,
                kPinTol);
}

TEST(GoldenEnergies, H2VqeConvergesToGolden)
{
    Ansatz a = buildUccsd(h2().nSpatial, h2().nElectrons);
    VqeResult res = runVqe(h2().hamiltonian, a);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.energy, kH2Fci, kVqeTol);
    // Variational bound: the optimizer may stop above, never below.
    EXPECT_GE(res.energy, kH2Fci - kPinTol);
}

TEST(GoldenEnergies, H2CorrelationEnergySignificant)
{
    // The gap the VQE must recover; if HF and FCI pins ever drift
    // together this still catches a collapsed correlation energy.
    EXPECT_NEAR(kH2HartreeFock - kH2Fci, 0.020524524680, kPinTol);
}

TEST(GoldenEnergies, LiHHartreeFock)
{
    EXPECT_NEAR(lih().hartreeFockEnergy, kLiHHartreeFock, kPinTol);
}

TEST(GoldenEnergies, LiHFci)
{
    EXPECT_NEAR(lanczosGroundEnergy(lih().hamiltonian), kLiHFci,
                kPinTol);
}

TEST(GoldenEnergies, LiHVqeConvergesToGolden)
{
    Ansatz a = buildUccsd(lih().nSpatial, lih().nElectrons);
    VqeResult res = runVqe(lih().hamiltonian, a);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.energy, kLiHFci, kVqeTol);
    EXPECT_GE(res.energy, kLiHFci - kPinTol);
}

TEST(GoldenEnergies, GradientDriverReachesGolden_H2)
{
    // The analytic-gradient optimizers must land on the same golden
    // energy as the legacy finite-difference path.
    Ansatz a = buildUccsd(h2().nSpatial, h2().nElectrons);
    for (auto method : {VqeDriverOptions::Method::Lbfgs,
                        VqeDriverOptions::Method::GradientDescent}) {
        VqeDriverOptions o;
        o.method = method;
        o.maxIter = 300;
        VqeDriver driver(h2().hamiltonian, a, o);
        VqeResult res = driver.run();
        EXPECT_NEAR(res.energy, kH2Fci, kVqeTol)
            << "method " << int(method);
    }
}

TEST(GoldenEnergies, SampledVqeWithinChemicalAccuracy_H2)
{
    // The end-to-end acceptance bar: a shot-based VQE run (grouped
    // sampling, SPSA, generous but finite measurement budget) must
    // land within chemical accuracy of the analytic optimum.
    Ansatz a = buildUccsd(h2().nSpatial, h2().nElectrons);
    VqeResult analytic = runVqe(h2().hamiltonian, a);

    VqeDriverOptions o;
    o.mode = EvalMode::Sampled;
    o.method = VqeDriverOptions::Method::Spsa;
    o.spsaIter = 200;
    o.sampling.shots = 65536;
    VqeDriver driver(h2().hamiltonian, a, o);
    VqeResult res = driver.run();

    EXPECT_NEAR(res.energy, analytic.energy, kChemicalAccuracy);
    EXPECT_GT(driver.shotsSpent(), uint64_t{0});
    // The trace must record the whole measurement bill.
    ASSERT_FALSE(driver.trace().points.empty());
    EXPECT_EQ(driver.trace().points.back().shots,
              driver.shotsSpent());
}
