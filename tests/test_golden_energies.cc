/**
 * @file
 * Golden-value regression suite: the chemistry numbers this repo
 * reproduces, pinned as hard-coded constants with explicit
 * tolerances. Hartree-Fock and FCI energies are deterministic
 * functions of the molecule/basis pipeline, so any refactor of the
 * integrals, SCF, active-space, Jordan-Wigner, simulator, or VQE
 * layers that silently shifts the chemistry fails here first. The
 * VQE-level checks run through the qcc::Experiment facade — the
 * same spec-driven path the examples and benches use.
 *
 * References: H2/STO-3G at 0.74 A has RHF = -1.11676 Ha and
 * FCI = -1.13728 Ha (standard textbook values, cf. the paper's
 * Table 1 molecule list); the LiH values pin this repo's 6-qubit
 * (3-orbital active space) problem at 1.6 A. Golden constants were
 * captured from the seeded implementation and agree with the
 * literature digits quoted above. The noisy-sampled pin captures
 * the end-to-end hardware model (density-matrix state + shot
 * readout) at the default QCC_SEED.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "api/experiment.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "ferm/hamiltonian.hh"
#include "sim/lanczos.hh"

using namespace qcc;

namespace {

// Pinned reference energies (Hartree).
constexpr double kH2HartreeFock = -1.116759312896;
constexpr double kH2Fci = -1.137283837576;
constexpr double kLiHHartreeFock = -7.860439103757;
constexpr double kLiHFci = -7.879466240336;

// Deterministic pipeline output: tight pin, far below any physical
// significance but loose enough for cross-platform libm drift.
constexpr double kPinTol = 1e-6;
// Optimizer-terminated results: driven by convergence tolerances.
constexpr double kVqeTol = 2e-6;
// Chemical accuracy, the paper's end-to-end bar.
constexpr double kChemicalAccuracy = 1.6e-3;

// Pinned BeH2 references: the repo's 12-qubit symmetric-stretch
// problem at 1.33 A (Table I row). The sampled-VQE pin is the
// seeded end-to-end shot-noise run (50% compressed UCCSD, SPSA,
// 16384 shots/estimate) captured from the implementation at the
// default QCC_SEED.
constexpr double kBeH2HartreeFock = -15.555777257802;
constexpr double kBeH2Fci = -15.590371791727;
constexpr double kBeH2Sampled = -15.555003;

// Seeded noisy-sampled H2 energy (QCC_SEED=2021 default): SPSA on
// the density-matrix state with shot readout, paper noise model.
// Captured from the seeded implementation (about 4.4 mHa above the
// noise-free FCI — the depolarizing CNOT penalty); the run must
// land within chemical accuracy of this pinned noisy value.
constexpr double kH2NoisySampled = -1.13292;

const MolecularProblem &
h2()
{
    static const MolecularProblem prob = [] {
        setVerbose(false);
        return buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    }();
    return prob;
}

const MolecularProblem &
lih()
{
    static const MolecularProblem prob = [] {
        setVerbose(false);
        return buildMolecularProblem(benchmarkMolecule("LiH"), 1.6);
    }();
    return prob;
}

/** Facade run: molecule at a bond length, ideal mode unless set. */
ExperimentBuilder
experimentOn(const char *molecule, double bond)
{
    setVerbose(false);
    ExperimentBuilder b = Experiment::builder();
    b.molecule(molecule).bond(bond).reference(false);
    return b;
}

} // namespace

TEST(GoldenEnergies, H2HartreeFock)
{
    EXPECT_NEAR(h2().hartreeFockEnergy, kH2HartreeFock, kPinTol);
}

TEST(GoldenEnergies, H2Fci)
{
    EXPECT_NEAR(lanczosGroundEnergy(h2().hamiltonian), kH2Fci,
                kPinTol);
}

TEST(GoldenEnergies, H2VqeConvergesToGolden)
{
    ExperimentResult res = experimentOn("H2", 0.74).build().run();
    EXPECT_TRUE(res.vqe.converged);
    EXPECT_NEAR(res.energy(), kH2Fci, kVqeTol);
    // Variational bound: the optimizer may stop above, never below.
    EXPECT_GE(res.energy(), kH2Fci - kPinTol);
}

TEST(GoldenEnergies, H2CorrelationEnergySignificant)
{
    // The gap the VQE must recover; if HF and FCI pins ever drift
    // together this still catches a collapsed correlation energy.
    EXPECT_NEAR(kH2HartreeFock - kH2Fci, 0.020524524680, kPinTol);
}

TEST(GoldenEnergies, LiHHartreeFock)
{
    EXPECT_NEAR(lih().hartreeFockEnergy, kLiHHartreeFock, kPinTol);
}

TEST(GoldenEnergies, LiHFci)
{
    EXPECT_NEAR(lanczosGroundEnergy(lih().hamiltonian), kLiHFci,
                kPinTol);
}

TEST(GoldenEnergies, LiHVqeConvergesToGolden)
{
    ExperimentResult res = experimentOn("LiH", 1.6).build().run();
    EXPECT_TRUE(res.vqe.converged);
    EXPECT_NEAR(res.energy(), kLiHFci, kVqeTol);
    EXPECT_GE(res.energy(), kLiHFci - kPinTol);
}

TEST(GoldenEnergies, GradientDriverReachesGolden_H2)
{
    // The analytic-gradient optimizers must land on the same golden
    // energy as the legacy finite-difference path.
    for (const char *optimizer : {"lbfgs", "gd"}) {
        ExperimentResult res = experimentOn("H2", 0.74)
                                   .optimizer(optimizer)
                                   .maxIter(300)
                                   .build()
                                   .run();
        EXPECT_NEAR(res.energy(), kH2Fci, kVqeTol)
            << "optimizer " << optimizer;
    }
}

TEST(GoldenEnergies, BeH2HartreeFockAndFci)
{
    // The larger-molecule row: 12 qubits, 92 full UCCSD parameters.
    setVerbose(false);
    MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("BeH2"), 1.33);
    EXPECT_EQ(prob.nQubits, 12u);
    EXPECT_NEAR(prob.hartreeFockEnergy, kBeH2HartreeFock, kPinTol);
    EXPECT_NEAR(lanczosGroundEnergy(prob.hamiltonian), kBeH2Fci,
                kPinTol);
    // Correlation energy must stay significant (~34.6 mHa).
    EXPECT_NEAR(kBeH2HartreeFock - kBeH2Fci, 0.034594533925,
                kPinTol);
}

TEST(GoldenEnergies, BeH2SampledVqeMatchesPinnedValue)
{
    // Seeded shot-based run on the 12-qubit problem — cheap now
    // that every energy evaluation reuses the grouped sampling
    // engine and the batched gradient scratch comes from the shared
    // BufferPool. The pinned value is the captured seeded result;
    // the run must replay within chemical accuracy of it and can
    // only sit above the FCI floor (up to the shot-noise margin).
    ExperimentResult res = experimentOn("BeH2", 1.33)
                               .compression(0.5)
                               .mode("sampled")
                               .optimizer("spsa")
                               .spsaIter(250)
                               .shots(16384)
                               .build()
                               .run();
    EXPECT_GT(res.shots, uint64_t{0});
    EXPECT_NEAR(res.energy(), kBeH2Sampled, kChemicalAccuracy);
    EXPECT_GE(res.energy(), kBeH2Fci - kChemicalAccuracy);
    EXPECT_LT(res.energy(), kBeH2HartreeFock + kChemicalAccuracy);
}

TEST(GoldenEnergies, SampledVqeWithinChemicalAccuracy_H2)
{
    // The end-to-end acceptance bar: a shot-based VQE run (grouped
    // sampling, SPSA, generous but finite measurement budget) must
    // land within chemical accuracy of the analytic optimum.
    ExperimentResult analytic =
        experimentOn("H2", 0.74).build().run();

    ExperimentResult res = experimentOn("H2", 0.74)
                               .mode("sampled")
                               .optimizer("spsa")
                               .spsaIter(200)
                               .shots(65536)
                               .build()
                               .run();

    EXPECT_NEAR(res.energy(), analytic.energy(), kChemicalAccuracy);
    EXPECT_GT(res.shots, uint64_t{0});
    // The trace must record the whole measurement bill.
    ASSERT_FALSE(res.trace.points.empty());
    EXPECT_EQ(res.trace.points.back().shots, res.shots);
}

TEST(GoldenEnergies, NoisySampledVqeMatchesPinnedValue_H2)
{
    // The ROADMAP composition: density-matrix state + shot readout,
    // one spec line. At the default seed the converged energy must
    // land within chemical accuracy of the pinned noisy value.
    ExperimentResult res = experimentOn("H2", 0.74)
                               .mode("noisy_sampled")
                               .optimizer("spsa")
                               .spsaIter(200)
                               .shots(65536)
                               .noise(1e-4)
                               .build()
                               .run();

    EXPECT_EQ(res.trace.mode, "noisy_sampled");
    EXPECT_GT(res.shots, uint64_t{0});
    EXPECT_NEAR(res.energy(), kH2NoisySampled, kChemicalAccuracy);
    // The depolarizing channels can only raise the energy above the
    // noise-free ground state (up to the shot-noise floor).
    EXPECT_GE(res.energy(), kH2Fci - kChemicalAccuracy);
}
