/**
 * @file
 * Unit tests for the frozen-core / active-space reduction, including
 * the per-molecule settings that reproduce Table I's qubit counts.
 */

#include <gtest/gtest.h>

#include "chem/hartree_fock.hh"
#include "chem/molecules.hh"
#include "ferm/active_space.hh"
#include "ferm/hamiltonian.hh"
#include "sim/statevector.hh"

using namespace qcc;

TEST(ActiveSpace, NoFreezeIsIdentity)
{
    const auto &entry = benchmarkMolecule("H2");
    Molecule mol = entry.build(0.74);
    BasisSet basis = BasisSet::stoNg(mol);
    IntegralTables ints = computeIntegrals(basis, mol);
    ScfResult scf = runRhf(ints, mol);
    MoIntegrals mo =
        transformToMo(ints, scf.coeffs, mol.nuclearRepulsion());

    ActiveSpaceResult as = applyActiveSpace(
        mo, scf.orbitalEnergies, mol.nElectrons(), 0, -1);
    EXPECT_EQ(as.active.nOrb, mo.nOrb);
    EXPECT_EQ(as.nActiveElectrons, 2u);
    EXPECT_TRUE(as.frozenMos.empty());
    EXPECT_NEAR(as.active.coreEnergy, mo.coreEnergy, 1e-12);
    EXPECT_NEAR((as.active.h - mo.h).maxAbs(), 0.0, 1e-12);
}

TEST(ActiveSpace, FrozenCoreEnergyConsistent)
{
    // Freezing orbitals must keep <HF|H|HF> equal to the RHF energy
    // (the frozen part moves into the core constant).
    const auto &entry = benchmarkMolecule("BeH2");
    MolecularProblem prob =
        buildMolecularProblem(entry, entry.equilibriumBond);
    EXPECT_EQ(prob.activeSpace.frozenMos.size(), 1u);

    Statevector hf(prob.nQubits,
                   hartreeFockMask(prob.nSpatial, prob.nElectrons));
    EXPECT_NEAR(hf.expectation(prob.hamiltonian),
                prob.hartreeFockEnergy, 1e-6);
}

TEST(ActiveSpace, TableIQubitCounts)
{
    // The headline structural check: every benchmark molecule
    // reduces to exactly the paper's qubit count.
    for (const auto &entry : benchmarkMolecules()) {
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        EXPECT_EQ(prob.nQubits, entry.expectQubits) << entry.name;
    }
}

TEST(ActiveSpace, LiHRemovesDegeneratePiPair)
{
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    ASSERT_EQ(prob.activeSpace.removedMos.size(), 2u);
    // The removed orbitals form a degenerate pair (the Li 2p pi).
    Molecule mol = entry.build(1.6);
    BasisSet basis = BasisSet::stoNg(mol);
    IntegralTables ints = computeIntegrals(basis, mol);
    ScfResult scf = runRhf(ints, mol);
    double e0 = scf.orbitalEnergies[prob.activeSpace.removedMos[0]];
    double e1 = scf.orbitalEnergies[prob.activeSpace.removedMos[1]];
    EXPECT_NEAR(e0, e1, 1e-6);
}

TEST(ActiveSpace, NaHKeepsFourSpatials)
{
    const auto &entry = benchmarkMolecule("NaH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.9);
    EXPECT_EQ(prob.nSpatial, 4u);
    EXPECT_EQ(prob.nElectrons, 2u);
    EXPECT_EQ(prob.activeSpace.frozenMos.size(), 5u);
}

TEST(ActiveSpace, ElectronsMatchTableI)
{
    struct Case
    {
        const char *name;
        unsigned electrons;
    };
    for (const auto &c : std::vector<Case>{{"H2", 2},
                                           {"LiH", 2},
                                           {"NaH", 2},
                                           {"HF", 8},
                                           {"BeH2", 4},
                                           {"H2O", 8},
                                           {"BH3", 6},
                                           {"NH3", 8},
                                           {"CH4", 8}}) {
        const auto &entry = benchmarkMolecule(c.name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        EXPECT_EQ(prob.nElectrons, c.electrons) << c.name;
    }
}
