/**
 * @file
 * Unit tests for Merge-to-Root (Algorithm 3): coupling-respecting
 * output, permutation-aware unitary equivalence against the logical
 * program, SWAP accounting on the Figure 8 worked example, and
 * comparisons against chain+SABRE overheads.
 */

#include <gtest/gtest.h>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "chem/molecules.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/merge_to_root.hh"
#include "compiler/verify.hh"
#include "ferm/hamiltonian.hh"

using namespace qcc;

namespace {

/** Wrap raw strings (unit coefficient each, one param per string). */
Ansatz
stringsToAnsatz(const std::vector<std::string> &strs,
                unsigned n_qubits)
{
    Ansatz a;
    a.nQubits = n_qubits;
    a.nParams = unsigned(strs.size());
    for (unsigned k = 0; k < strs.size(); ++k) {
        a.rotations.push_back(
            {k, 1.0, PauliString::fromString(strs[k])});
        a.excitations.push_back(
            {Excitation::Kind::Single, {0, 0, 0, 0}});
    }
    return a;
}

std::vector<double>
smallAngles(unsigned n)
{
    std::vector<double> v(n);
    for (unsigned i = 0; i < n; ++i)
        v[i] = 0.1 + 0.07 * i;
    return v;
}

} // namespace

TEST(MergeToRoot, RespectsTreeCoupling)
{
    XTree tree = makeXTree(8);
    Ansatz a = stringsToAnsatz({"ZZZZZZZZ", "XIXIXIXI", "IIYYIIZZ"},
                               8);
    MtrResult res =
        mergeToRootCompile(a, smallAngles(a.nParams), tree, false);
    EXPECT_TRUE(respectsCoupling(res.circuit, tree.graph));
}

TEST(MergeToRoot, UnitaryEquivalenceOnTree)
{
    XTree tree = makeXTree(5);
    Ansatz a = stringsToAnsatz({"ZZZZZ", "XYXYI", "IIZXY", "YIIIX"},
                               5);
    auto params = smallAngles(a.nParams);
    MtrResult res = mergeToRootCompile(a, params, tree, false);
    Circuit logical = synthesizeChainCircuit(a, params, false);
    EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                         res.initialLayout,
                                         res.finalLayout));
}

TEST(MergeToRoot, UccsdEquivalenceWithHfPrep)
{
    // Full pipeline on H2: UCCSD onto XTree5Q with the hierarchical
    // initial layout, verified against the logical chain circuit.
    Ansatz a = buildUccsd(2, 2);
    auto params = smallAngles(a.nParams);
    XTree tree = makeXTree(5);
    MtrResult res = mergeToRootCompile(a, params, tree, true);
    Circuit logical = synthesizeChainCircuit(a, params, true);
    EXPECT_TRUE(respectsCoupling(res.circuit, tree.graph));
    EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                         res.initialLayout,
                                         res.finalLayout));
}

TEST(MergeToRoot, Figure8Example)
{
    // Figure 8's placement: logical q0,q2 on level-2 children of an
    // inactive level-1 node; q1 on another level-1 node; q3 on a
    // level-2 child under q1. The paper's interleaved listing counts
    // 2 SWAPs for the left tree, but that listing is not invertible
    // by a CNOT-only mirror tree (the moved parity orphans q3); the
    // unitarily exact schedule costs one extra SWAP. See DESIGN.md.
    XTree tree = makeXTree(17);
    std::vector<unsigned> l2p = {5, 2, 6, 8};
    Layout init = Layout::fromLogToPhys(l2p, 17);

    Ansatz a = stringsToAnsatz({"ZZZZ"}, 4);
    auto params = smallAngles(1);
    MtrResult res = mergeToRootCompile(a, params, tree, init, false);
    EXPECT_EQ(res.swapCount, 3u);
    EXPECT_EQ(res.overheadCnots(), 9u);
    EXPECT_TRUE(respectsCoupling(res.circuit, tree.graph));

    Circuit logical = synthesizeChainCircuit(a, params, false);
    EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                         res.initialLayout,
                                         res.finalLayout));
}

TEST(MergeToRoot, ZeroOverheadWhenAlignedWithTree)
{
    // A string whose actives already form a parent-closed subtree
    // needs no SWAPs at all.
    XTree tree = makeXTree(8);
    std::vector<unsigned> l2p = {0, 1, 2, 5}; // root, kids, grandkid
    Layout init = Layout::fromLogToPhys(l2p, 8);
    Ansatz a = stringsToAnsatz({"ZZZZ"}, 4);
    MtrResult res =
        mergeToRootCompile(a, smallAngles(1), tree, init, false);
    EXPECT_EQ(res.swapCount, 0u);
    // CNOT count = 2 * (weight - 1), same as the chain plan.
    EXPECT_EQ(res.circuit.cnotCount(false), 6u);
}

TEST(MergeToRoot, SingleQubitStringNeedsNothing)
{
    XTree tree = makeXTree(5);
    Ansatz a = stringsToAnsatz({"IIXII"}, 5);
    MtrResult res =
        mergeToRootCompile(a, smallAngles(1), tree, false);
    EXPECT_EQ(res.swapCount, 0u);
    EXPECT_EQ(res.circuit.cnotCount(), 0u);
}

TEST(MergeToRoot, MappingEvolvesAcrossStrings)
{
    // After a SWAP for string 1, string 2 is synthesized against the
    // updated mapping (the compiler adapts rather than undoing).
    XTree tree = makeXTree(8);
    std::vector<unsigned> l2p = {5, 6, 0, 1};
    Layout init = Layout::fromLogToPhys(l2p, 8);
    Ansatz a = stringsToAnsatz({"IIZZ", "IIZZ"}, 4);
    MtrResult res =
        mergeToRootCompile(a, smallAngles(2), tree, init, false);
    // First occurrence pays the SWAP; the second is free.
    EXPECT_EQ(res.swapCount, 1u);
    Circuit logical =
        synthesizeChainCircuit(a, smallAngles(2), false);
    EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                         res.initialLayout,
                                         res.finalLayout));
}

TEST(MergeToRoot, LiHCompressedEndToEnd)
{
    // Realistic program: LiH UCCSD at 50% compression on XTree17Q.
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    CompressedAnsatz comp =
        compressAnsatz(full, prob.hamiltonian, 0.5);

    XTree tree = makeXTree(17);
    auto params = smallAngles(comp.ansatz.nParams);
    MtrResult res = mergeToRootCompile(comp.ansatz, params, tree);
    EXPECT_TRUE(respectsCoupling(res.circuit, tree.graph));
    Circuit logical = synthesizeChainCircuit(comp.ansatz, params);
    EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                         res.initialLayout,
                                         res.finalLayout));
    // Overhead should be tiny relative to the program (paper: ~1.4%
    // of original CNOTs on average).
    EXPECT_LT(double(res.overheadCnots()),
              0.25 * double(logical.cnotCount()));
}
