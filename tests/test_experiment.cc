/**
 * @file
 * Tests for the qcc::Experiment facade layer: ExperimentSpec JSON
 * round-tripping, registry diagnostics (unknown keys must list the
 * registered names), the architecture parser, builder fluency, and
 * the contract that a facade run reproduces a hand-wired VqeDriver
 * (strategy injection) bit-for-bit at a fixed seed — plus the NoisySampled
 * composition smoke check.
 */

#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "api/experiment.hh"
#include "common/logging.hh"
#include "ferm/hamiltonian.hh"
#include "vqe/driver.hh"
#include "vqe/estimation.hh"

using namespace qcc;

namespace {

struct VerboseSilencer
{
    VerboseSilencer() { setVerbose(false); }
} silencer;

ExperimentSpec
customSpec()
{
    ExperimentSpec s;
    s.molecule = "LiH";
    s.bond = 1.45;
    s.basisNg = 3;
    s.compression = 0.5;
    s.grouping = "sorted-insertion";
    s.mode = "noisy_sampled";
    s.optimizer = "spsa";
    s.pipeline = "mtr";
    s.architecture = "xtree17";
    s.cnotError = 2.5e-4;
    s.singleQubitError = 1e-5;
    s.shots = 4096;
    s.seed = 77;
    s.maxIter = 123;
    s.spsaIter = 321;
    s.reference = false;
    return s;
}

} // namespace

TEST(ExperimentSpec, JsonRoundTripIsIdentity)
{
    for (const ExperimentSpec &s :
         {ExperimentSpec{}, customSpec()}) {
        const std::string doc = s.json();
        ExperimentSpec back = ExperimentSpec::fromJson(doc);
        EXPECT_EQ(back.json(), doc);
        EXPECT_EQ(back.molecule, s.molecule);
        EXPECT_EQ(back.bond, s.bond);
        EXPECT_EQ(back.basisNg, s.basisNg);
        EXPECT_EQ(back.compression, s.compression);
        EXPECT_EQ(back.grouping, s.grouping);
        EXPECT_EQ(back.mode, s.mode);
        EXPECT_EQ(back.optimizer, s.optimizer);
        EXPECT_EQ(back.pipeline, s.pipeline);
        EXPECT_EQ(back.architecture, s.architecture);
        EXPECT_EQ(back.cnotError, s.cnotError);
        EXPECT_EQ(back.singleQubitError, s.singleQubitError);
        EXPECT_EQ(back.shots, s.shots);
        EXPECT_EQ(back.seed, s.seed);
        EXPECT_EQ(back.maxIter, s.maxIter);
        EXPECT_EQ(back.spsaIter, s.spsaIter);
        EXPECT_EQ(back.reference, s.reference);
    }
}

TEST(ExperimentSpec, MalformedJsonNamesTheField)
{
    EXPECT_THROW(ExperimentSpec::fromJson("not json"), SpecError);
    EXPECT_THROW(ExperimentSpec::fromJson("{\"bond\": \"x\"}"),
                 SpecError);
    // strtoull would wrap a negative silently; the parser must not.
    EXPECT_THROW(ExperimentSpec::fromJson("{\"seed\": -1}"),
                 SpecError);
    EXPECT_THROW(ExperimentSpec::fromJson("{\"shots\": -5}"),
                 SpecError);
    // Out-of-int-range numbers must throw, not cast (UB).
    EXPECT_THROW(ExperimentSpec::fromJson("{\"max_iter\": 1e300}"),
                 SpecError);
    try {
        ExperimentSpec::fromJson("{\"no_such_field\": 1}");
        FAIL() << "unknown field accepted";
    } catch (const SpecError &e) {
        EXPECT_EQ(e.field(), "no_such_field");
    }
    // A typo'd evolve field must be named, not silently dropped.
    try {
        ExperimentSpec::fromJson("{\"evolve_step\": 4}");
        FAIL() << "typo'd field accepted";
    } catch (const SpecError &e) {
        EXPECT_EQ(e.field(), "evolve_step");
    }
    EXPECT_THROW(ExperimentSpec::fromJson("{\"evolve_steps\": 1e300}"),
                 SpecError);
    EXPECT_THROW(ExperimentSpec::fromJson("{\"kind\": 3}"),
                 SpecError);
}

TEST(ExperimentSpec, DuplicateTopLevelFieldsRejected)
{
    // The ordered-DOM parser preserves duplicates; last-wins would
    // make two meanings for one document, so the spec layer rejects.
    try {
        ExperimentSpec::fromJson(
            "{\"molecule\": \"H2\", \"molecule\": \"LiH\"}");
        FAIL() << "duplicate field accepted";
    } catch (const SpecError &e) {
        EXPECT_EQ(e.field(), "molecule");
        EXPECT_NE(std::string(e.what()).find("duplicate"),
                  std::string::npos);
    }
    EXPECT_THROW(ExperimentSpec::fromJson(
                     "{\"kind\": \"vqe\", \"bond\": 1.0, "
                     "\"kind\": \"estimate\"}"),
                 SpecError);
    // Non-duplicated documents still parse.
    EXPECT_NO_THROW(ExperimentSpec::fromJson(
        "{\"kind\": \"estimate\", \"bond\": 1.0}"));
}

TEST(ExperimentSpec, EvolveFieldsRoundTrip)
{
    ExperimentSpec s;
    s.kind = "evolve";
    s.evolveTime = 0.75;
    s.evolveSteps = 6;
    s.evolveOrder = 2;
    const std::string doc = s.json();
    const ExperimentSpec back = ExperimentSpec::fromJson(doc);
    EXPECT_EQ(back.json(), doc);
    EXPECT_EQ(back.kind, "evolve");
    EXPECT_EQ(back.evolveTime, 0.75);
    EXPECT_EQ(back.evolveSteps, 6);
    EXPECT_EQ(back.evolveOrder, 2);
}

TEST(Experiment, UnknownModeListsRegisteredModes)
{
    ExperimentSpec s;
    s.mode = "bogus";
    try {
        Experiment bad(s);
        FAIL() << "unknown mode accepted";
    } catch (const RegistryError &e) {
        EXPECT_EQ(e.key(), "bogus");
        const std::string msg = e.what();
        EXPECT_NE(msg.find("ideal"), std::string::npos);
        EXPECT_NE(msg.find("noisy_sampled"), std::string::npos);
        EXPECT_NE(msg.find("sampled"), std::string::npos);
    }
}

TEST(Experiment, UnknownOptimizerListsRegisteredNames)
{
    ExperimentSpec s;
    s.optimizer = "adam";
    try {
        Experiment bad(s);
        FAIL() << "unknown optimizer accepted";
    } catch (const RegistryError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("lbfgs"), std::string::npos);
        EXPECT_NE(msg.find("spsa"), std::string::npos);
        EXPECT_NE(msg.find("nelder-mead"), std::string::npos);
    }
}

TEST(Experiment, UnknownGroupingAndPresetDiagnosed)
{
    ExperimentSpec s;
    s.grouping = "rainbow";
    EXPECT_THROW(Experiment bad(s), RegistryError);

    ExperimentSpec p;
    p.pipeline = "warp";
    try {
        Experiment bad(p);
        FAIL() << "unknown preset accepted";
    } catch (const RegistryError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("chain"), std::string::npos);
        EXPECT_NE(msg.find("mtr"), std::string::npos);
        EXPECT_NE(msg.find("sabre"), std::string::npos);
    }
}

TEST(Experiment, UnknownMoleculeListsCatalog)
{
    ExperimentSpec s;
    s.molecule = "C60";
    try {
        Experiment bad(s);
        FAIL() << "unknown molecule accepted";
    } catch (const SpecError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("H2"), std::string::npos);
        EXPECT_NE(msg.find("CH4"), std::string::npos);
    }
}

TEST(Experiment, RoutedPresetRequiresDevice)
{
    ExperimentSpec s;
    s.pipeline = "mtr"; // routes, but no architecture named
    EXPECT_THROW(Experiment bad(s), SpecError);

    ExperimentSpec g;
    g.pipeline = "mtr";
    g.architecture = "grid17"; // MtR needs a tree
    EXPECT_THROW(Experiment bad(g), SpecError);
}

TEST(Experiment, DeviceParserHandlesTheArchitectureFamilies)
{
    Device t = makeDevice("xtree17");
    ASSERT_TRUE(t.tree.has_value());
    EXPECT_EQ(t.tree->graph.numQubits(), 17u);
    EXPECT_EQ(t.graph->numEdges(), 16u);

    Device g = makeDevice("grid3x6");
    EXPECT_FALSE(g.tree.has_value());
    EXPECT_EQ(g.graph->numQubits(), 18u);

    EXPECT_EQ(makeDevice("grid17").graph->numQubits(), 17u);
    EXPECT_THROW(makeDevice("torus4"), SpecError);
    EXPECT_THROW(makeDevice("gridAxB"), SpecError);
    // Out-of-range sizes must reject, not wrap to a tiny device.
    EXPECT_THROW(makeDevice("xtree4294967297"), SpecError);
    EXPECT_THROW(makeDevice("grid4294967297x2"), SpecError);
    EXPECT_THROW(makeDevice("grid4096x4096"), SpecError);
}

TEST(Experiment, RegistriesExposeTheBuiltInComponents)
{
    const auto backends = backendRegistry().names();
    EXPECT_NE(std::find(backends.begin(), backends.end(),
                        "statevector"),
              backends.end());
    EXPECT_NE(std::find(backends.begin(), backends.end(),
                        "density_matrix"),
              backends.end());
    EXPECT_EQ(optimizerRegistry().size(), 4u);
    EXPECT_TRUE(groupingRegistry().contains("greedy"));
    EXPECT_TRUE(groupingRegistry().contains("sorted-insertion"));
    EXPECT_TRUE(groupingRegistry().contains("graph-coloring"));
    EXPECT_TRUE(pipelinePresetRegistry().contains("chain"));
    EXPECT_TRUE(estimationRegistry().contains("noisy_sampled"));

    // Registry-built backends report their own names.
    auto sv = backendRegistry().get("statevector")({3, {}});
    EXPECT_STREQ(sv->name(), "statevector");
    EXPECT_EQ(sv->numQubits(), 3u);
}

TEST(Experiment, BuilderAssemblesTheSpec)
{
    ExperimentBuilder b = Experiment::builder();
    b.molecule("LiH").bond(1.6).compression(0.5);
    b.mode("sampled").optimizer("spsa").shots(1024).seed(9);
    b.grouping("sorted-insertion").reference(false);
    const ExperimentSpec &s = b.spec();
    EXPECT_EQ(s.molecule, "LiH");
    EXPECT_EQ(s.bond, 1.6);
    EXPECT_EQ(s.compression, 0.5);
    EXPECT_EQ(s.mode, "sampled");
    EXPECT_EQ(s.optimizer, "spsa");
    EXPECT_EQ(s.shots, uint64_t{1024});
    EXPECT_EQ(s.seed, uint64_t{9});
    EXPECT_EQ(s.grouping, "sorted-insertion");
    EXPECT_FALSE(s.reference);
}

TEST(Experiment, FacadeMatchesLegacyDriverBitForBit)
{
    // The acceptance contract: the spec-driven path must reproduce
    // the legacy hand-wired driver exactly at a fixed seed.
    MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    Ansatz ansatz = buildUccsd(prob.nSpatial, prob.nElectrons);
    VqeDriver legacy(
        prob.hamiltonian, ansatz, {},
        makeEstimationStrategy(
            "ideal",
            EstimationConfig{&prob.hamiltonian, {}, {}, {}}));
    VqeResult legacyRes = legacy.run();

    ExperimentBuilder b = Experiment::builder();
    b.molecule("H2").bond(0.74).reference(false);
    ExperimentResult facade = b.build().run();

    EXPECT_EQ(facade.energy(), legacyRes.energy);
    EXPECT_EQ(facade.vqe.params, legacyRes.params);
    EXPECT_EQ(facade.vqe.iterations, legacyRes.iterations);
    EXPECT_EQ(facade.trace.json(), legacy.trace().json());
}

TEST(Experiment, SampledFacadeMatchesLegacySampledDriver)
{
    MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    Ansatz ansatz = buildUccsd(prob.nSpatial, prob.nElectrons);
    VqeDriverOptions o;
    o.method = VqeDriverOptions::Method::Spsa;
    o.spsaIter = 30;
    o.sampling.shots = 2048;
    VqeDriver legacy(
        prob.hamiltonian, ansatz, o,
        makeEstimationStrategy(
            "sampled",
            EstimationConfig{&prob.hamiltonian, o.noise, o.sampling,
                             {}}));
    VqeResult legacyRes = legacy.run();

    ExperimentBuilder b = Experiment::builder();
    b.molecule("H2").bond(0.74).reference(false);
    b.mode("sampled").optimizer("spsa").spsaIter(30).shots(2048);
    ExperimentResult facade = b.build().run();

    EXPECT_EQ(facade.energy(), legacyRes.energy);
    EXPECT_EQ(facade.shots, legacy.shotsSpent());
    EXPECT_EQ(facade.trace.json(), legacy.trace().json());
}

TEST(Experiment, NoisySampledIsAOneLineComposition)
{
    // Smoke check of the composed mode: density-matrix state + shot
    // readout, selected purely by spec string.
    ExperimentBuilder b = Experiment::builder();
    b.molecule("H2").bond(0.74).reference(false);
    b.mode("noisy_sampled").optimizer("spsa").spsaIter(10);
    b.shots(512).noise(1e-3);
    ExperimentResult res = b.build().run();

    EXPECT_EQ(res.trace.mode, "noisy_sampled");
    EXPECT_GT(res.shots, uint64_t{0});
    EXPECT_LT(res.energy(), 0.0);
    // The strategy's backend really is the density-matrix model.
    EstimationConfig cfg;
    cfg.hamiltonian = &res.hamiltonian;
    auto strat = makeEstimationStrategy("noisy_sampled", cfg);
    EXPECT_STREQ(strat->makeBackend()->name(), "density_matrix");
    EXPECT_TRUE(strat->stochastic());
}

TEST(Experiment, ResultJsonCarriesSpecMetricsAndTrace)
{
    ExperimentBuilder b = Experiment::builder();
    b.molecule("H2").bond(0.74).pipeline("chain");
    ExperimentResult res = b.build().run();
    ASSERT_TRUE(res.haveFci);
    EXPECT_NEAR(res.energy(), res.fci, 1e-4);
    EXPECT_TRUE(res.compiled.present);
    EXPECT_GT(res.compiled.cnots, size_t{0});

    const std::string doc = res.json();
    EXPECT_NE(doc.find("\"spec\""), std::string::npos);
    EXPECT_NE(doc.find("\"molecule\": \"H2\""), std::string::npos);
    EXPECT_NE(doc.find("\"trace\""), std::string::npos);
    EXPECT_NE(doc.find("\"energy\""), std::string::npos);
    EXPECT_NE(doc.find("\"compiled\""), std::string::npos);
    EXPECT_NE(doc.find("\"timing_ms\""), std::string::npos);

    // The resolved spec round-trips through the result document's
    // own spec block (replay provenance).
    ExperimentSpec back = ExperimentSpec::fromJson(res.spec.json());
    EXPECT_EQ(back.json(), res.spec.json());
    EXPECT_EQ(back.bond, 0.74);
}

TEST(Experiment, SortedInsertionGroupingSelectableBySpec)
{
    ExperimentBuilder b = Experiment::builder();
    b.molecule("H2").bond(0.74).reference(false);
    b.grouping("sorted-insertion");
    ExperimentResult res = b.build().run();
    EXPECT_GT(res.measurementSettings, size_t{0});
    EXPECT_LT(res.measurementSettings, res.hamiltonianTerms);
    // Same ideal physics regardless of grouping strategy.
    ExperimentResult greedy = Experiment::builder()
                                  .molecule("H2")
                                  .bond(0.74)
                                  .reference(false)
                                  .build()
                                  .run();
    EXPECT_NEAR(res.energy(), greedy.energy(), 1e-9);
}
