/**
 * @file
 * Tests for the pluggable SimBackend interface: statevector and
 * density-matrix backends agree in the noiseless limit, the noisy
 * backend reproduces the chain-synthesized noisy energies, and the
 * VQE driver runs unmodified against either state model (strategy
 * injection over statevectorModel / densityMatrixModel).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "chem/molecules.hh"
#include "common/rng.hh"
#include "ferm/hamiltonian.hh"
#include "sim/backend.hh"
#include "sim/lanczos.hh"
#include "vqe/driver.hh"
#include "vqe/estimation.hh"
#include "vqe/expectation_engine.hh"
#include "vqe/vqe.hh"

using namespace qcc;

namespace {

const MolecularProblem &
h2Problem()
{
    static MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    return prob;
}

std::vector<double>
randomParams(unsigned n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> p(n);
    for (auto &v : p)
        v = rng.uniform(-0.3, 0.3);
    return p;
}

/** Minimize through a caller-chosen state model (analytic readout). */
VqeResult
minimizeOn(StateModel model, const PauliSum &h, const Ansatz &a,
           VqeDriverOptions opts = {})
{
    VqeDriver driver(h, a, opts,
                     std::make_unique<AnalyticEstimation>(
                         h, std::move(model), "backend-test"));
    return driver.run();
}

} // namespace

TEST(Backend, StatevectorBackendMatchesDirectSimulator)
{
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    auto params = randomParams(a.nParams, 5);

    StatevectorBackend be(a.nQubits);
    be.applyAnsatz(a, params);
    Statevector direct = prepareAnsatzState(a, params);

    ASSERT_NE(be.statevector(), nullptr);
    for (size_t i = 0; i < direct.dim(); ++i)
        EXPECT_NEAR(std::abs(be.state().amplitudes()[i] -
                             direct.amplitudes()[i]),
                    0.0, 1e-12);
    EXPECT_NEAR(be.expectation(prob.hamiltonian),
                direct.expectation(prob.hamiltonian), 1e-12);
}

TEST(Backend, PrepareResetsState)
{
    StatevectorBackend be(3);
    Circuit c(3);
    c.h(0);
    c.cnot(0, 2);
    be.applyCircuit(c);
    be.prepare(0b101);
    EXPECT_NEAR(std::abs(be.state().amplitudes()[0b101]), 1.0, 1e-14);

    DensityMatrixBackend dm(2);
    Circuit c2(2);
    c2.h(1);
    dm.applyCircuit(c2);
    dm.prepare(0b10);
    EXPECT_NEAR(std::abs(dm.state().element(0b10, 0b10) - 1.0), 0.0,
                1e-14);
    EXPECT_NEAR(dm.state().trace(), 1.0, 1e-12);
}

TEST(Backend, NoiselessBackendsAgree)
{
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    auto params = randomParams(a.nParams, 9);

    StatevectorBackend ideal(a.nQubits);
    DensityMatrixBackend pure(a.nQubits); // default-noiseless
    double e1 = ansatzEnergy(ideal, prob.hamiltonian, a, params);
    double e2 = ansatzEnergy(pure, prob.hamiltonian, a, params);
    EXPECT_NEAR(e1, e2, 1e-9);
}

TEST(Backend, DensityMatrixPauliRotationMatchesStatevector)
{
    // Exact rho -> U rho U+ agrees with the pure-state rotation on
    // every Pauli expectation.
    Rng rng(31);
    const unsigned n = 3;
    for (int rep = 0; rep < 10; ++rep) {
        PauliString p(n, rng.index(1ull << n), rng.index(1ull << n));
        const double theta = rng.uniform(-2.0, 2.0);

        StatevectorBackend sv(n);
        DensityMatrixBackend dm(n);
        uint64_t basis = rng.index(1ull << n);
        sv.prepare(basis);
        dm.prepare(basis);
        sv.applyPauliRotation(theta, p);
        dm.applyPauliRotation(theta, p);

        for (int probe = 0; probe < 6; ++probe) {
            PauliString obs(n, rng.index(1ull << n),
                            rng.index(1ull << n));
            EXPECT_NEAR(sv.expectation(obs), dm.expectation(obs),
                        1e-11)
                << "rot " << p.str() << " obs " << obs.str();
        }
    }
}

TEST(Backend, NoisyBackendChargesCnotNoise)
{
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    auto params = randomParams(a.nParams, 13);

    double clean = ansatzEnergy(prob.hamiltonian, a, params);
    NoiseModel nm;
    nm.cnotDepolarizing = 1e-3;
    DensityMatrixBackend noisy(a.nQubits, nm);
    double e = ansatzEnergy(noisy, prob.hamiltonian, a, params);
    EXPECT_GT(e, clean);
    // And matches the long-standing noisy energy entry point.
    EXPECT_NEAR(e, ansatzEnergyNoisy(prob.hamiltonian, a, params, nm),
                1e-12);
}

TEST(Backend, EngineFallsBackToBackendExpectation)
{
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    auto params = randomParams(a.nParams, 17);

    DensityMatrixBackend dm(a.nQubits);
    dm.applyAnsatz(a, params);
    ExpectationEngine engine(prob.hamiltonian);
    EXPECT_NEAR(engine.energy(dm), dm.expectation(prob.hamiltonian),
                1e-12);
}

TEST(Backend, VqeRunsAgainstEitherBackend)
{
    // The integration check of the interface: the same driver, ansatz
    // and Hamiltonian reach the H2 ground state on the ideal
    // statevector backend and on the (noiseless) density-matrix
    // backend, and a noisy density-matrix run lands above both.
    const auto &prob = h2Problem();
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    double exact = lanczosGroundEnergy(prob.hamiltonian);

    VqeResult rIdeal =
        minimizeOn(statevectorModel(a.nQubits), prob.hamiltonian, a);
    EXPECT_NEAR(rIdeal.energy, exact, 1e-6);
    EXPECT_TRUE(rIdeal.converged);

    VqeResult rPure = minimizeOn(
        densityMatrixModel(a.nQubits, {}), prob.hamiltonian, a);
    EXPECT_NEAR(rPure.energy, exact, 1e-6);

    NoiseModel nm;
    nm.cnotDepolarizing = 1e-3;
    VqeDriverOptions o;
    o.method = VqeDriverOptions::Method::Spsa;
    o.spsaIter = 120;
    VqeResult rNoisy = minimizeOn(densityMatrixModel(a.nQubits, nm),
                                  prob.hamiltonian, a, o);
    EXPECT_GT(rNoisy.energy, exact - 1e-9);
    EXPECT_NEAR(rNoisy.energy, exact, 0.05);
}
