/**
 * @file
 * Tests for the sweep subsystem: SweepSpec JSON round-tripping and
 * axis expansion (cartesian order, numeric ranges, explicit jobs),
 * engine determinism (byte-identical SWEEP json at concurrency 1
 * and N under one seed), failure isolation (a bad job is recorded,
 * the sweep continues), the soft per-job timeout, cooperative
 * mid-sweep cancellation, cross-job sharing of the global compile
 * cache, and resume (spec_hash-keyed adoption of completed jobs
 * from a prior SWEEP document).
 */

#include <gtest/gtest.h>

#include <filesystem>

#include <unistd.h>

#include "api/experiment.hh"
#include "common/logging.hh"
#include "compiler/cache.hh"
#include "sweep/sweep_engine.hh"

using namespace qcc;

namespace {

struct VerboseSilencer
{
    VerboseSilencer() { setVerbose(false); }
} silencer;

/** Cheap stochastic H2 sweep: grouping x seed, 4 jobs. */
SweepSpec
smallSweep()
{
    return SweepSpec::fromJson(R"({
      "name": "unit",
      "base": {
        "molecule": "H2", "bond": 0.74, "mode": "sampled",
        "optimizer": "spsa", "spsa_iter": 10, "shots": 1024,
        "reference": false
      },
      "axes": {
        "grouping": ["greedy", "graph-coloring"],
        "seed": [2021, 2022]
      },
      "emit_timings": false
    })");
}

} // namespace

TEST(SweepSpec, JsonRoundTripReproducesTheSpec)
{
    SweepSpec spec = smallSweep();
    spec.concurrency = 3;
    spec.jobTimeoutMs = 1500.0;
    spec.retries = 2;
    ExperimentSpec extra;
    extra.molecule = "LiH";
    extra.bond = 1.6;
    spec.explicitJobs.push_back(extra);

    const std::string doc = spec.json();
    SweepSpec back = SweepSpec::fromJson(doc);
    EXPECT_EQ(back.json(), doc);
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.concurrency, 3u);
    EXPECT_EQ(back.jobTimeoutMs, 1500.0);
    EXPECT_EQ(back.retries, 2);
    EXPECT_FALSE(back.emitTimings);
    ASSERT_EQ(back.axes.size(), 2u);
    EXPECT_EQ(back.axes[0].field, "grouping");
    EXPECT_EQ(back.axes[1].values.size(), 2u);
    ASSERT_EQ(back.explicitJobs.size(), 1u);
    EXPECT_EQ(back.explicitJobs[0].molecule, "LiH");

    // Expansion agrees job for job.
    const auto a = spec.expand(), b = back.expand();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].json(), b[i].json()) << i;
}

TEST(SweepSpec, CartesianExpansionOrderIsDocumentOrder)
{
    SweepSpec spec = smallSweep();
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 4u);
    // First axis (grouping) slowest, second (seed) fastest.
    EXPECT_EQ(jobs[0].grouping, "greedy");
    EXPECT_EQ(jobs[0].seed, uint64_t{2021});
    EXPECT_EQ(jobs[1].grouping, "greedy");
    EXPECT_EQ(jobs[1].seed, uint64_t{2022});
    EXPECT_EQ(jobs[2].grouping, "graph-coloring");
    EXPECT_EQ(jobs[2].seed, uint64_t{2021});
    EXPECT_EQ(jobs[3].grouping, "graph-coloring");
    EXPECT_EQ(jobs[3].seed, uint64_t{2022});
    // Base fields flow into every job.
    for (const auto &j : jobs) {
        EXPECT_EQ(j.molecule, "H2");
        EXPECT_EQ(j.shots, uint64_t{1024});
    }
}

TEST(SweepSpec, RangeAxisExpandsEndpointInclusive)
{
    SweepSpec spec = SweepSpec::fromJson(R"({
      "base": {"molecule": "LiH"},
      "axes": {"bond": {"from": 1.0, "to": 2.6, "step": 0.2}}
    })");
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 9u);
    EXPECT_DOUBLE_EQ(jobs.front().bond, 1.0);
    EXPECT_NEAR(jobs.back().bond, 2.6, 1e-12);
    for (size_t i = 1; i < jobs.size(); ++i)
        EXPECT_NEAR(jobs[i].bond - jobs[i - 1].bond, 0.2, 1e-12);

    // A span that is not a whole number of steps must stop short of
    // `to`, never overshoot it.
    SweepSpec ragged = SweepSpec::fromJson(R"({
      "base": {"molecule": "LiH"},
      "axes": {"bond": {"from": 1.0, "to": 2.0, "step": 0.4}}
    })");
    const auto rjobs = ragged.expand();
    ASSERT_EQ(rjobs.size(), 3u);
    EXPECT_NEAR(rjobs.back().bond, 1.8, 1e-12);
}

TEST(SweepSpec, ExplicitJobsInheritBaseRegardlessOfKeyOrder)
{
    // JSON object key order must not change semantics: a document
    // that lists "jobs" before "base" still expands the jobs over
    // the base defaults.
    SweepSpec spec = SweepSpec::fromJson(R"({
      "jobs": [ {"bond": 1.6} ],
      "base": {"molecule": "LiH", "compression": 0.5}
    })");
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].molecule, "LiH");
    EXPECT_EQ(jobs[0].compression, 0.5);
    EXPECT_EQ(jobs[0].bond, 1.6);
}

TEST(SweepSpec, DiagnosticsNameTheOffendingElement)
{
    // Unknown axis field -> SpecError with the field name.
    EXPECT_THROW(SweepSpec::fromJson(
                     R"({"axes": {"warp": [1, 2]}})"),
                 SpecError);
    // Ill-typed axis value.
    EXPECT_THROW(SweepSpec::fromJson(
                     R"({"axes": {"bond": ["x"]}})"),
                 SpecError);
    // Unknown sweep-level field.
    try {
        SweepSpec::fromJson(R"({"jobz": []})");
        FAIL() << "unknown sweep field accepted";
    } catch (const SweepError &e) {
        EXPECT_EQ(e.element(), "jobz");
    }
    // Malformed ranges.
    EXPECT_THROW(SweepSpec::fromJson(
                     R"({"axes": {"bond": {"from": 1, "to": 2}}})"),
                 SweepError);
    EXPECT_THROW(
        SweepSpec::fromJson(
            R"({"axes": {"bond": {"from": 2, "to": 1, "step": 1}}})"),
        SweepError);
    // Wild ranges must fail with a diagnostic, not cast-UB or OOM.
    EXPECT_THROW(
        SweepSpec::fromJson(R"({"axes": {"bond":
            {"from": 0, "to": 1e300, "step": 1e-300}}})"),
        SweepError);
    EXPECT_THROW(
        SweepSpec::fromJson(R"({"axes": {"bond":
            {"from": 0, "to": 1e12, "step": 1e-6}}})"),
        SweepError);
    // A bare base is a one-job sweep; empty axis lists are not.
    EXPECT_EQ(SweepSpec::fromJson("{}").expand().size(), 1u);
    EXPECT_THROW(SweepSpec::fromJson(R"({"axes": {"seed": []}})"),
                 SweepError);
}

TEST(SweepEngine, ByteIdenticalAggregateAtConcurrency1AndN)
{
    // The determinism contract: with timings off, the SWEEP json is
    // a pure function of (spec, QCC_SEED) — scheduling must never
    // leak in. Run the same stochastic sweep serially and on four
    // workers and diff the documents byte for byte.
    SweepEngineOptions serial;
    serial.concurrency = 1;
    ResultStore s1 = SweepEngine(smallSweep(), serial).run();

    SweepEngineOptions wide;
    wide.concurrency = 4;
    ResultStore s4 = SweepEngine(smallSweep(), wide).run();

    EXPECT_EQ(s1.countWithStatus(JobStatus::Done), 4u);
    EXPECT_EQ(s1.json(), s4.json());

    // And the jobs really differ from one another (distinct seeds).
    EXPECT_NE(s1.jobs()[0].result.energy(),
              s1.jobs()[1].result.energy());
}

TEST(SweepEngine, FailedJobIsRecordedAndTheSweepContinues)
{
    SweepSpec spec = smallSweep();
    ExperimentSpec bad = spec.base;
    bad.molecule = "C60"; // not in the catalog
    ExperimentSpec worse = spec.base;
    worse.grouping = "rainbow"; // not a registered strategy
    spec.explicitJobs.push_back(bad);
    spec.explicitJobs.push_back(worse);

    ResultStore store = SweepEngine(spec).run();
    EXPECT_EQ(store.countWithStatus(JobStatus::Done), 4u);
    EXPECT_EQ(store.countWithStatus(JobStatus::Failed), 2u);
    const SweepJobRecord &molFail = store.jobs()[4];
    EXPECT_EQ(molFail.status, JobStatus::Failed);
    EXPECT_NE(molFail.error.find("molecule"), std::string::npos);
    // Spec errors fail fast: no retry can fix a typo'd key.
    EXPECT_EQ(molFail.attempts, 1);
    const SweepJobRecord &grpFail = store.jobs()[5];
    EXPECT_NE(grpFail.error.find("rainbow"), std::string::npos);

    // The aggregate records both outcomes.
    const std::string doc = store.json();
    EXPECT_NE(doc.find("\"failed\": 2"), std::string::npos);
    EXPECT_NE(doc.find("rainbow"), std::string::npos);
}

TEST(SweepEngine, SoftTimeoutDemotesOverBudgetJobs)
{
    SweepSpec spec = smallSweep();
    spec.jobTimeoutMs = 1e-6; // everything blows the budget
    ResultStore store = SweepEngine(spec).run();
    EXPECT_EQ(store.countWithStatus(JobStatus::TimedOut), 4u);
    // The runs still finished; their results stay inspectable.
    for (const auto &r : store.jobs()) {
        EXPECT_TRUE(r.finished());
        EXPECT_LT(r.result.energy(), 0.0);
    }
    // ...but they are out of the summaries.
    EXPECT_NE(store.json().find("\"best_energy\": []"),
              std::string::npos);
    // The record and the document both name the kind: this is the
    // in-process engine's soft semantics (the job DID complete),
    // not sweepd's hard kill.
    EXPECT_EQ(store.jobs()[0].timeoutKind, TimeoutKind::Soft);
    EXPECT_NE(store.json().find("\"timeout_kind\": \"soft\""),
              std::string::npos);
}

TEST(SweepSpec, JobHashIsStableAndSpecSensitive)
{
    const std::vector<ExperimentSpec> jobs = smallSweep().expand();
    // Deterministic: the same expanded spec always hashes the same.
    EXPECT_EQ(sweepJobHash(jobs[0]), sweepJobHash(jobs[0]));
    EXPECT_EQ(sweepJobHash(jobs[0]).size(), 32u);
    // Sensitive: distinct jobs get distinct resume keys.
    EXPECT_NE(sweepJobHash(jobs[0]), sweepJobHash(jobs[1]));
    ExperimentSpec tweaked = jobs[0];
    tweaked.seed += 1;
    EXPECT_NE(sweepJobHash(jobs[0]), sweepJobHash(tweaked));
}

TEST(SweepEngine, ResumeAdoptsCompletedJobsAndReproducesBytes)
{
    // A full run's document is the resume source.
    ResultStore first = SweepEngine(smallSweep()).run();
    EXPECT_EQ(first.countWithStatus(JobStatus::Done), 4u);
    const std::string doc = first.json();
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("qcc_resume_" + std::to_string(::getpid()) + ".json"))
            .string();
    ASSERT_FALSE(first.writeTo(path).empty());

    // Resuming from it re-runs nothing and reproduces the bytes.
    SweepEngineOptions opts;
    opts.resumeFrom = path;
    SweepEngine engine(smallSweep(), opts);
    ResultStore second = engine.run();
    EXPECT_EQ(engine.adopted(), 4u);
    EXPECT_EQ(second.countWithStatus(JobStatus::Done), 4u);
    EXPECT_EQ(second.json(), doc);

    // A different sweep adopts nothing from it: every job's
    // spec_hash differs, so the stale records are ignored.
    SweepSpec other = smallSweep();
    other.base.shots = 2048;
    SweepEngine fresh(other, opts);
    ResultStore third = fresh.run();
    EXPECT_EQ(fresh.adopted(), 0u);
    EXPECT_EQ(third.countWithStatus(JobStatus::Done), 4u);

    std::filesystem::remove(path);

    // A missing resume file is a hard error, not a silent cold run.
    SweepEngineOptions missing;
    missing.resumeFrom = path;
    EXPECT_THROW(SweepEngine(smallSweep(), missing).run(),
                 SweepError);
}

TEST(SweepEngine, CancellationSkipsUnclaimedJobs)
{
    // Serial engine, cancel after the second completion: jobs 0-1
    // are recorded done, jobs 2-3 never run.
    SweepEngineOptions opts;
    opts.concurrency = 1;
    SweepEngine *handle = nullptr;
    opts.progress = [&handle](const SweepProgress &p) {
        if (p.completed == 2)
            handle->requestCancel();
    };
    SweepEngine engine(smallSweep(), opts);
    handle = &engine;
    ResultStore store = engine.run();

    EXPECT_TRUE(engine.cancelled());
    EXPECT_EQ(store.countWithStatus(JobStatus::Done), 2u);
    EXPECT_EQ(store.countWithStatus(JobStatus::Skipped), 2u);
    EXPECT_EQ(store.jobs()[0].status, JobStatus::Done);
    EXPECT_EQ(store.jobs()[3].status, JobStatus::Skipped);
    // Skipped jobs still carry their spec in the aggregate.
    EXPECT_NE(store.json().find("\"skipped\": 2"),
              std::string::npos);
}

TEST(SweepEngine, JobsShareTheGlobalCompileCache)
{
    if (!circuitCacheEnabled())
        GTEST_SKIP() << "QCC_COMPILE_CACHE=0 in the environment";
    // Three seed-varied compiled jobs: the first misses, the rest
    // rebind the shared entry.
    SweepSpec spec = SweepSpec::fromJson(R"({
      "name": "cache",
      "base": {
        "molecule": "H2", "bond": 0.74, "optimizer": "spsa",
        "spsa_iter": 2, "reference": false,
        "pipeline": "mtr", "architecture": "xtree5"
      },
      "axes": {"seed": [1, 2, 3]}
    })");
    globalCircuitCache().clear();
    const CacheStats before = globalCircuitCache().stats();
    SweepEngineOptions opts;
    opts.concurrency = 1;
    ResultStore store = SweepEngine(spec, opts).run();
    const CacheStats after = globalCircuitCache().stats();

    EXPECT_EQ(store.countWithStatus(JobStatus::Done), 3u);
    EXPECT_GE(after.hits - before.hits, size_t{2});
    // All three jobs compiled the same structure.
    EXPECT_EQ(store.jobs()[0].result.compiled.cnots,
              store.jobs()[2].result.compiled.cnots);
}

TEST(SweepEngine, AggregateCarriesCurvesAndSummaries)
{
    SweepSpec spec = SweepSpec::fromJson(R"({
      "name": "curve",
      "base": {"molecule": "H2", "compression": 0.67},
      "axes": {"bond": [0.6, 0.74, 1.0]},
      "emit_timings": false
    })");
    ResultStore store = SweepEngine(spec).run();
    ASSERT_EQ(store.countWithStatus(JobStatus::Done), 3u);

    const std::string doc = store.json();
    EXPECT_NE(doc.find("\"curves\""), std::string::npos);
    EXPECT_NE(doc.find("\"best_energy\""), std::string::npos);
    EXPECT_NE(doc.find("\"grouping_settings\""), std::string::npos);
    EXPECT_NE(doc.find("\"fci\""), std::string::npos);
    // Timings are volatile; the deterministic document drops them.
    EXPECT_EQ(doc.find("\"wall_ms\""), std::string::npos);
    EXPECT_EQ(doc.find("\"timing_ms\""), std::string::npos);

    // The equilibrium point wins the best-energy summary.
    const auto &jobs = store.jobs();
    EXPECT_LT(jobs[1].result.energy(), jobs[0].result.energy());
    EXPECT_LT(jobs[1].result.energy(), jobs[2].result.energy());
    EXPECT_NE(doc.find("\"molecule\": \"H2\", \"job\": 1"),
              std::string::npos);
}

TEST(SweepEngine, EstimateSweepRunsSimulationFree)
{
    // A whole estimate sweep — the Table I costing path — runs
    // through the ordinary engine with kind dispatch per job.
    SweepSpec spec = SweepSpec::fromJson(R"({
      "name": "est_unit",
      "base": {
        "kind": "estimate", "molecule": "H2", "max_iter": 20,
        "shots": 1000, "reference": false
      },
      "axes": {
        "grouping": ["greedy", "sorted-insertion", "graph-coloring"]
      },
      "emit_timings": false
    })");
    ResultStore store = SweepEngine(spec).run();
    ASSERT_EQ(store.countWithStatus(JobStatus::Done), 3u);
    for (const auto &rec : store.jobs()) {
        EXPECT_TRUE(rec.result.estimate.present);
        EXPECT_EQ(rec.result.shots, 0u) << "estimate spent shots";
        EXPECT_EQ(rec.result.estimate.shotBudget, 1000u * 20u);
        EXPECT_GT(rec.result.estimate.gates, 0u);
    }
    // All groupings cost the same circuit; settings may differ.
    EXPECT_EQ(store.jobs()[0].result.estimate.cnots,
              store.jobs()[2].result.estimate.cnots);

    const std::string doc = store.json();
    EXPECT_NE(doc.find("\"estimate\""), std::string::npos);
    // Ground-state aggregates stay empty: HF placeholders must not
    // masquerade as a best energy or a dissociation curve.
    EXPECT_NE(doc.find("\"best_energy\": []"), std::string::npos);
    EXPECT_NE(doc.find("\"curves\": []"), std::string::npos);

    // Resume adopts estimate records byte-identically too.
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("qcc_est_resume_" + std::to_string(::getpid()) + ".json"))
            .string();
    ASSERT_FALSE(store.writeTo(path).empty());
    SweepEngineOptions opts;
    opts.resumeFrom = path;
    SweepEngine resumed(spec, opts);
    ResultStore second = resumed.run();
    EXPECT_EQ(resumed.adopted(), 3u);
    EXPECT_EQ(second.json(), doc);
    std::filesystem::remove(path);
}

TEST(SweepEngine, MixedKindSweepKeepsKindsApart)
{
    // One sweep can mix workloads via a kind axis (vqe jobs reuse
    // the spec's evolve-free defaults, estimate jobs never sample).
    SweepSpec spec = SweepSpec::fromJson(R"({
      "name": "mixed",
      "base": {
        "molecule": "H2", "mode": "sampled", "optimizer": "spsa",
        "spsa_iter": 5, "shots": 512, "reference": false
      },
      "axes": {"kind": ["vqe", "estimate"]},
      "emit_timings": false
    })");
    ResultStore store = SweepEngine(spec).run();
    ASSERT_EQ(store.countWithStatus(JobStatus::Done), 2u);
    const auto &jobs = store.jobs();
    EXPECT_FALSE(jobs[0].result.estimate.present);
    EXPECT_GT(jobs[0].result.shots, 0u);
    EXPECT_TRUE(jobs[1].result.estimate.present);
    EXPECT_EQ(jobs[1].result.shots, 0u);
    // best_energy reports only the vqe job.
    EXPECT_NE(store.json().find("\"molecule\": \"H2\", \"job\": 0"),
              std::string::npos);
}

TEST(SweepSpecFiles, ShippedTableSpecsParseAndExpand)
{
    // The full Table I/II studies ship as spec files (copied next to
    // the binaries at configure time). They must stay parseable and
    // expand to the paper's row structure; every expanded job must
    // construct an Experiment (validating molecule, registry keys,
    // and device names) without running anything.
    struct Expected
    {
        const char *path;
        size_t jobs;
    };
    const Expected files[] = {
        {"specs/table1_full.json", 9 * 3},
        {"specs/table2_full.json", 9 * 5},
    };
    for (const auto &f : files) {
        SweepSpec spec;
        try {
            spec = SweepSpec::fromFile(f.path);
        } catch (const SweepError &) {
            GTEST_SKIP() << f.path
                         << " not present next to the test binary "
                            "(run from the build tree)";
        }
        EXPECT_EQ(spec.jobCount(), f.jobs) << f.path;
        std::vector<ExperimentSpec> jobs = spec.expand();
        ASSERT_EQ(jobs.size(), f.jobs) << f.path;
        for (const ExperimentSpec &job : jobs)
            EXPECT_NO_THROW(Experiment e(job))
                << f.path << " molecule=" << job.molecule;
        // Both tables end at CH4, the largest benchmark molecule.
        EXPECT_EQ(jobs.back().molecule, "CH4") << f.path;
    }
}
