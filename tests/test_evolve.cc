/**
 * @file
 * Golden tests for the Trotterized time-evolution workload and the
 * simulation-free resource estimator: pinned fidelity of the
 * product-formula circuits against the dense exp(-iHt) reference for
 * catalog molecules, build-structure invariants, estimator counts
 * against a direct compile, and Experiment-facade round-trips for
 * the "evolve" and "estimate" kinds.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "api/experiment.hh"
#include "chem/molecules.hh"
#include "estimate/estimate.hh"
#include "evolve/trotter.hh"
#include "ferm/hamiltonian.hh"
#include "vqe/vqe.hh"

using namespace qcc;

namespace {

const BenchmarkMolecule &
catalogByName(const std::string &name)
{
    for (const auto &entry : benchmarkMolecules())
        if (entry.name == name)
            return entry;
    throw std::runtime_error("not in catalog: " + name);
}

MolecularProblem
problemFor(const std::string &name)
{
    const BenchmarkMolecule &entry = catalogByName(name);
    return buildMolecularProblem(entry, entry.equilibriumBond);
}

double
trotterFidelity(const MolecularProblem &prob, double t, int steps,
                int order)
{
    const uint64_t hf =
        hartreeFockMask(prob.nSpatial, prob.nElectrons);
    const TrotterBuild tb =
        buildTrotterAnsatz(prob.hamiltonian, hf, steps, order);
    const Statevector psi =
        prepareAnsatzState(tb.ansatz, {t / steps});
    const Statevector exact =
        exactEvolvedState(prob.hamiltonian, prob.nQubits, hf, t);
    return stateFidelity(exact, psi);
}

} // namespace

TEST(Evolve, H2TrotterMatchesDenseExponentialGolden)
{
    const MolecularProblem prob = problemFor("H2");
    // The acceptance pin: a small-step second-order formula already
    // reproduces exp(-iHt)|HF> to better than 1e-6 infidelity.
    EXPECT_GE(trotterFidelity(prob, 1.0, 8, 2), 1.0 - 1e-6);
    EXPECT_GE(trotterFidelity(prob, 1.0, 16, 2), 1.0 - 1e-7);
    // First order converges too, one order slower.
    EXPECT_GE(trotterFidelity(prob, 1.0, 16, 1), 1.0 - 1e-4);
}

TEST(Evolve, SecondOrderBeatsFirstOrderAtEqualSteps)
{
    const MolecularProblem prob = problemFor("H2");
    for (int steps : {1, 2, 4, 8}) {
        const double f1 = trotterFidelity(prob, 1.0, steps, 1);
        const double f2 = trotterFidelity(prob, 1.0, steps, 2);
        EXPECT_GT(f2, f1) << "steps=" << steps;
    }
}

TEST(Evolve, TrotterErrorShrinksWithStepCount)
{
    const MolecularProblem prob = problemFor("H2");
    double prevErr = 1.0;
    for (int steps : {1, 2, 4, 8, 16}) {
        const double err =
            1.0 - trotterFidelity(prob, 1.0, steps, 1);
        EXPECT_LT(err, prevErr) << "steps=" << steps;
        prevErr = err;
    }
}

TEST(Evolve, LiHShortTimeGolden)
{
    const MolecularProblem prob = problemFor("LiH");
    EXPECT_GE(trotterFidelity(prob, 0.25, 4, 2), 1.0 - 1e-6);
}

TEST(Evolve, ExactEvolutionConservesNormAndEnergy)
{
    const MolecularProblem prob = problemFor("H2");
    const uint64_t hf =
        hartreeFockMask(prob.nSpatial, prob.nElectrons);
    const Statevector initial(prob.nQubits, hf);
    const double e0 = initial.expectation(prob.hamiltonian);
    for (double t : {0.1, 0.7, 2.3}) {
        const Statevector psi =
            exactEvolvedState(prob.hamiltonian, prob.nQubits, hf, t);
        EXPECT_NEAR(psi.norm(), 1.0, 1e-12) << "t=" << t;
        EXPECT_NEAR(psi.expectation(prob.hamiltonian), e0, 1e-10)
            << "t=" << t;
    }
    // t = 0 is the identity.
    const Statevector same =
        exactEvolvedState(prob.hamiltonian, prob.nQubits, hf, 0.0);
    EXPECT_NEAR(stateFidelity(initial, same), 1.0, 1e-12);
}

TEST(Evolve, TrotterBuildStructure)
{
    const MolecularProblem prob = problemFor("H2");
    const uint64_t hf =
        hartreeFockMask(prob.nSpatial, prob.nElectrons);

    const TrotterBuild o1 =
        buildTrotterAnsatz(prob.hamiltonian, hf, 3, 1);
    EXPECT_EQ(o1.ansatz.nParams, 1u);
    EXPECT_EQ(o1.ansatz.hfMask, hf);
    EXPECT_EQ(o1.steps, 3);
    // Identity terms are global phase: skipped, counted.
    EXPECT_EQ(o1.termsPerStep + o1.identityTerms,
              prob.hamiltonian.numTerms());
    EXPECT_EQ(o1.ansatz.rotations.size(), 3 * o1.termsPerStep);

    // Strang doubles the per-step list (forward + reversed halves).
    const TrotterBuild o2 =
        buildTrotterAnsatz(prob.hamiltonian, hf, 3, 2);
    EXPECT_EQ(o2.termsPerStep, 2 * o1.termsPerStep);
    // ... and halves each coefficient.
    EXPECT_DOUBLE_EQ(o2.ansatz.rotations[0].coeff,
                     o1.ansatz.rotations[0].coeff / 2.0);
    // The reversed half mirrors the forward half.
    const size_t half = o1.termsPerStep;
    for (size_t j = 0; j < half; ++j)
        EXPECT_TRUE(o2.ansatz.rotations[half + j].string ==
                    o2.ansatz.rotations[half - 1 - j].string);

    EXPECT_THROW(buildTrotterAnsatz(prob.hamiltonian, hf, 0, 1),
                 std::invalid_argument);
    EXPECT_THROW(buildTrotterAnsatz(prob.hamiltonian, hf, 1, 3),
                 std::invalid_argument);
}

TEST(Estimate, CountsMatchDirectChainCompile)
{
    const MolecularProblem prob = problemFor("H2");
    const Ansatz ansatz =
        buildUccsd(prob.nSpatial, prob.nElectrons);

    EstimateRequest req;
    req.hamiltonian = &prob.hamiltonian;
    req.program = &ansatz;
    req.shotsPerEstimate = 4096;
    req.iterations = 25;
    const EstimateResult est = estimateResources(req);

    EXPECT_TRUE(est.present);
    EXPECT_EQ(est.qubits, prob.nQubits);
    EXPECT_EQ(est.parameters, ansatz.nParams);
    EXPECT_EQ(est.hamiltonianTerms, prob.hamiltonian.numTerms());
    EXPECT_EQ(est.measurementSettings,
              groupQubitWise(prob.hamiltonian).size());

    const std::vector<double> zeros(ansatz.nParams, 0.0);
    const Circuit chain = cachedChainCircuit(ansatz, zeros, true);
    EXPECT_EQ(est.gates, chain.totalGates());
    EXPECT_EQ(est.cnots, chain.cnotCount());
    EXPECT_EQ(est.depth, chain.depth());
    EXPECT_EQ(est.swaps, 0u);

    EXPECT_EQ(est.shotsPerEstimate, 4096u);
    EXPECT_EQ(est.shotBudget, 4096u * 25u);
}

TEST(Estimate, ShotBudgetArithmetic)
{
    const MolecularProblem prob = problemFor("H2");
    const Ansatz ansatz =
        buildUccsd(prob.nSpatial, prob.nElectrons);
    EstimateRequest req;
    req.hamiltonian = &prob.hamiltonian;
    req.program = &ansatz;
    req.shotsPerEstimate = 100;
    req.iterations = 0; // no optimizer loop: budget is zero
    EXPECT_EQ(estimateResources(req).shotBudget, 0u);
    req.iterations = -3; // clamped, not wrapped
    EXPECT_EQ(estimateResources(req).shotBudget, 0u);
}

TEST(Evolve, ExperimentFacadeEvolveKind)
{
    ExperimentResult r = Experiment::builder()
                             .kind("evolve")
                             .molecule("H2")
                             .evolveTime(0.5)
                             .evolveSteps(4)
                             .evolveOrder(2)
                             .reference(true)
                             .build()
                             .run();
    EXPECT_TRUE(r.evolution.present);
    EXPECT_FALSE(r.estimate.present);
    EXPECT_DOUBLE_EQ(r.evolution.time, 0.5);
    EXPECT_EQ(r.evolution.steps, 4);
    EXPECT_EQ(r.evolution.order, 2);
    EXPECT_TRUE(r.evolution.haveFidelity);
    EXPECT_GE(r.evolution.fidelity, 1.0 - 1e-6);
    EXPECT_GT(r.evolution.stepGates, 0u);
    // The headline energy is <psi(t)|H|psi(t)>.
    EXPECT_DOUBLE_EQ(r.energy(), r.evolution.finalEnergy);

    // Round-trip: the compact record rehydrates byte-identically.
    ExperimentResult::JsonOptions jo;
    jo.timings = false;
    jo.trace = false;
    const std::string doc = r.json(jo);
    ExperimentResult back;
    ASSERT_TRUE(ExperimentResult::fromJsonDom(JsonValue::parse(doc),
                                              back));
    EXPECT_EQ(back.json(jo), doc);
    EXPECT_DOUBLE_EQ(back.evolution.fidelity, r.evolution.fidelity);
}

TEST(Estimate, ExperimentFacadeEstimateKind)
{
    ExperimentResult r = Experiment::builder()
                             .kind("estimate")
                             .molecule("H2")
                             .maxIter(30)
                             .shots(2048)
                             .build()
                             .run();
    EXPECT_TRUE(r.estimate.present);
    EXPECT_FALSE(r.evolution.present);
    EXPECT_EQ(r.estimate.qubits, 4u);
    EXPECT_GT(r.estimate.gates, 0u);
    EXPECT_GT(r.estimate.cnots, 0u);
    EXPECT_EQ(r.estimate.shotsPerEstimate, 2048u);
    EXPECT_EQ(r.estimate.shotBudget, 2048u * 30u);
    // Simulation-free: no VQE loop ran, no shots were spent.
    EXPECT_EQ(r.shots, 0u);
    EXPECT_EQ(r.vqe.evals, 0);
    EXPECT_DOUBLE_EQ(r.energy(), r.hartreeFock);

    ExperimentResult::JsonOptions jo;
    jo.timings = false;
    jo.trace = false;
    const std::string doc = r.json(jo);
    ExperimentResult back;
    ASSERT_TRUE(ExperimentResult::fromJsonDom(JsonValue::parse(doc),
                                              back));
    EXPECT_EQ(back.json(jo), doc);
}

TEST(Estimate, TrotterProgramSelectedByEvolveSteps)
{
    // evolve_steps >= 1 costs the Trotter program instead of UCCSD.
    ExperimentResult r = Experiment::builder()
                             .kind("estimate")
                             .molecule("H2")
                             .evolveTime(1.0)
                             .evolveSteps(2)
                             .evolveOrder(2)
                             .build()
                             .run();
    EXPECT_TRUE(r.estimate.present);
    EXPECT_EQ(r.estimate.parameters, 1u); // one dt parameter
    EXPECT_EQ(r.fullParams, 1u);
}

TEST(Evolve, SpecValidationRejectsBadEvolveFields)
{
    ExperimentSpec bad;
    bad.kind = "evolve";
    bad.molecule = "H2";
    EXPECT_THROW(Experiment e(bad), SpecError); // steps/time missing

    bad.evolveSteps = 2;
    bad.evolveTime = 1.0;
    bad.evolveOrder = 3;
    EXPECT_THROW(Experiment e(bad), SpecError);

    bad.evolveOrder = 2;
    Experiment ok(bad); // now valid
    EXPECT_EQ(ok.spec().kind, "evolve");

    ExperimentSpec vqeSpec;
    vqeSpec.evolveSteps = 2; // evolve fields on a vqe spec
    EXPECT_THROW(Experiment e(vqeSpec), SpecError);

    ExperimentSpec unknownKind;
    unknownKind.kind = "nope";
    EXPECT_THROW(Experiment e(unknownKind), RegistryError);
}
