/**
 * @file
 * Parameter-shift gradient tests: agreement with central finite
 * differences on every evaluation path (ideal statevector, noisy
 * pair-difference, generic backend replay), bit-for-bit equality of
 * batched and serial execution and of the prefix-shared fast paths
 * against full replays, CircuitCache reuse on the gate-level path,
 * and convergence of the gradient-driven optimizers.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "compiler/cache.hh"
#include "ferm/hamiltonian.hh"
#include "sim/lanczos.hh"
#include "vqe/driver.hh"
#include "vqe/expectation_engine.hh"
#include "vqe/gradient.hh"
#include "vqe/vqe.hh"

using namespace qcc;

namespace {

struct Fixture
{
    MolecularProblem prob;
    Ansatz ansatz;
};

const Fixture &
h2()
{
    static const Fixture fix = [] {
        setVerbose(false);
        MolecularProblem prob =
            buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
        Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
        return Fixture{std::move(prob), std::move(a)};
    }();
    return fix;
}

const Fixture &
lih()
{
    static const Fixture fix = [] {
        setVerbose(false);
        MolecularProblem prob =
            buildMolecularProblem(benchmarkMolecule("LiH"), 1.6);
        Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
        return Fixture{std::move(prob), std::move(a)};
    }();
    return fix;
}

std::vector<double>
testParams(unsigned n)
{
    std::vector<double> p(n);
    for (unsigned i = 0; i < n; ++i)
        p[i] = 0.07 * double(i + 1) - 0.15;
    return p;
}

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    EXPECT_EQ(a.size(), b.size());
    double m = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

} // namespace

TEST(Gradient, ShiftMatchesFiniteDifferences_Ideal)
{
    const Fixture &fix = h2();
    ExpectationEngine ee(fix.prob.hamiltonian);
    ParameterShiftEngine engine(fix.prob.hamiltonian, fix.ansatz);
    auto params = testParams(fix.ansatz.nParams);

    auto g = engine.gradientStatevector(
        params,
        [&](const Statevector &psi, size_t) { return ee.energy(psi); });

    auto make = [&] {
        return std::make_unique<StatevectorBackend>(
            fix.ansatz.nQubits);
    };
    auto energy = [&](SimBackend &b, size_t) { return ee.energy(b); };
    auto fd =
        finiteDifferenceGradient(fix.ansatz, params, make, energy);
    EXPECT_LT(maxAbsDiff(g, fd), 1e-7);
}

TEST(Gradient, ShiftMatchesFiniteDifferences_Noisy)
{
    const Fixture &fix = h2();
    NoiseModel noise;
    noise.cnotDepolarizing = 1e-3;
    noise.singleQubitDepolarizing = 1e-4;
    ParameterShiftEngine engine(fix.prob.hamiltonian, fix.ansatz);
    auto params = testParams(fix.ansatz.nParams);

    auto g = engine.gradientNoisy(params, noise);

    auto make = [&] {
        return std::make_unique<DensityMatrixBackend>(
            fix.ansatz.nQubits, noise);
    };
    auto energy = [&](SimBackend &b, size_t) {
        return b.expectation(fix.prob.hamiltonian);
    };
    auto fd =
        finiteDifferenceGradient(fix.ansatz, params, make, energy);
    EXPECT_LT(maxAbsDiff(g, fd), 1e-7);
}

TEST(Gradient, PairDifferenceMatchesGenericReplay_Noisy)
{
    // The linear-superoperator difference sweep against literally
    // executing both shifted circuits through the backend.
    const Fixture &fix = h2();
    NoiseModel noise = NoiseModel::paperDefault();
    ParameterShiftEngine engine(fix.prob.hamiltonian, fix.ansatz);
    auto params = testParams(fix.ansatz.nParams);

    auto fast = engine.gradientNoisy(params, noise);
    auto slow = engine.gradient(
        params,
        [&] {
            return std::make_unique<DensityMatrixBackend>(
                fix.ansatz.nQubits, noise);
        },
        [&](SimBackend &b, size_t) {
            return b.expectation(fix.prob.hamiltonian);
        });
    EXPECT_LT(maxAbsDiff(fast, slow), 1e-12);
}

TEST(Gradient, BatchedEqualsSerialBitForBit)
{
    const Fixture &fix = lih();
    ExpectationEngine ee(fix.prob.hamiltonian);
    NoiseModel noise = NoiseModel::paperDefault();
    auto params = testParams(fix.ansatz.nParams);

    ParameterShiftEngine batched(fix.prob.hamiltonian, fix.ansatz);
    GradientOptions serialOpts;
    serialOpts.batched = false;
    ParameterShiftEngine serial(fix.prob.hamiltonian, fix.ansatz,
                                serialOpts);

    auto est = [&](const Statevector &psi, size_t) {
        return ee.energy(psi);
    };
    EXPECT_EQ(batched.gradientStatevector(params, est),
              serial.gradientStatevector(params, est));
    EXPECT_EQ(batched.gradientNoisy(params, noise),
              serial.gradientNoisy(params, noise));

    auto make = [&] {
        return std::make_unique<StatevectorBackend>(
            fix.ansatz.nQubits);
    };
    auto energy = [&](SimBackend &b, size_t) { return ee.energy(b); };
    EXPECT_EQ(batched.gradient(params, make, energy),
              serial.gradient(params, make, energy));
}

TEST(Gradient, BatchedEqualsSerialAtParallelKernelSizes)
{
    // The molecule fixtures are small enough that every kernel sweep
    // runs inline; this synthetic pair trips the chunked parallel
    // paths (16-qubit statevector, 8-qubit density matrix: both
    // 65536-element arrays, past 2x the parallel grain), pinning the
    // bit-for-bit guarantee where chunk scheduling is real.
    auto randomProblem = [](unsigned n, unsigned nRot,
                            uint64_t seed) {
        Rng rng(seed);
        Ansatz a;
        a.nQubits = n;
        a.nParams = nRot;
        a.hfMask = rng.index(uint64_t{1} << n);
        for (unsigned j = 0; j < nRot; ++j)
            a.rotations.push_back(
                {j, 0.6,
                 PauliString(n, rng.index(uint64_t{1} << n),
                             rng.index(uint64_t{1} << n))});
        PauliSum h(n);
        for (int t = 0; t < 8; ++t)
            h.add(rng.uniform(-1.0, 1.0),
                  PauliString(n, rng.index(uint64_t{1} << n),
                              rng.index(uint64_t{1} << n)));
        return std::pair<PauliSum, Ansatz>(std::move(h),
                                           std::move(a));
    };

    {
        auto [h, a] = randomProblem(16, 4, 3);
        ExpectationEngine ee(h);
        ParameterShiftEngine batched(h, a);
        GradientOptions so;
        so.batched = false;
        ParameterShiftEngine serial(h, a, so);
        std::vector<double> p(a.nParams, 0.15);
        auto est = [&](const Statevector &psi, size_t) {
            return ee.energy(psi);
        };
        EXPECT_EQ(batched.gradientStatevector(p, est),
                  serial.gradientStatevector(p, est));
    }
    {
        auto [h, a] = randomProblem(8, 3, 5);
        NoiseModel noise;
        noise.cnotDepolarizing = 1e-3;
        ParameterShiftEngine batched(h, a);
        GradientOptions so;
        so.batched = false;
        ParameterShiftEngine serial(h, a, so);
        std::vector<double> p(a.nParams, 0.15);
        EXPECT_EQ(batched.gradientNoisy(p, noise),
                  serial.gradientNoisy(p, noise));
    }
}

TEST(Gradient, PrefixSharingEqualsFullReplayBitForBit)
{
    const Fixture &fix = h2();
    ExpectationEngine ee(fix.prob.hamiltonian);
    NoiseModel noise = NoiseModel::paperDefault();
    auto params = testParams(fix.ansatz.nParams);

    ParameterShiftEngine shared(fix.prob.hamiltonian, fix.ansatz);
    GradientOptions noSnapshots;
    noSnapshots.maxPrefixBytes = 0; // force replay/streaming paths
    ParameterShiftEngine replay(fix.prob.hamiltonian, fix.ansatz,
                                noSnapshots);

    auto est = [&](const Statevector &psi, size_t) {
        return ee.energy(psi);
    };
    EXPECT_EQ(shared.gradientStatevector(params, est),
              replay.gradientStatevector(params, est));
    EXPECT_EQ(shared.gradientNoisy(params, noise),
              replay.gradientNoisy(params, noise));
}

TEST(Gradient, SampledGradientSeededAndBatchingInvariant)
{
    const Fixture &fix = h2();
    auto params = testParams(fix.ansatz.nParams);
    VqeDriverOptions o;
    o.sampling.shots = 4096;
    auto sampled = [&](const VqeDriverOptions &opts) {
        return makeEstimationStrategy(
            "sampled",
            EstimationConfig{&fix.prob.hamiltonian, opts.noise,
                             opts.sampling, {}});
    };

    VqeDriver d1(fix.prob.hamiltonian, fix.ansatz, o, sampled(o));
    VqeDriver d2(fix.prob.hamiltonian, fix.ansatz, o, sampled(o));
    VqeDriverOptions serial = o;
    serial.gradient.batched = false;
    VqeDriver d3(fix.prob.hamiltonian, fix.ansatz, serial,
                 sampled(serial));

    auto g1 = d1.gradient(params);
    auto g2 = d2.gradient(params);
    auto g3 = d3.gradient(params);
    EXPECT_EQ(g1, g2); // same seed -> identical draws
    EXPECT_EQ(g1, g3); // scheduling never leaks into the streams

    // A sampled gradient still points the right way.
    ExpectationEngine ee(fix.prob.hamiltonian);
    ParameterShiftEngine exact(fix.prob.hamiltonian, fix.ansatz);
    auto ref = exact.gradientStatevector(
        params,
        [&](const Statevector &psi, size_t) { return ee.energy(psi); });
    EXPECT_LT(maxAbsDiff(g1, ref), 0.5);
}

TEST(Gradient, UnrolledShiftsRebindTheSharedCacheEntry)
{
    if (!circuitCacheEnabled())
        GTEST_SKIP() << "QCC_COMPILE_CACHE=0 in the environment";
    const Fixture &fix = h2();
    NoiseModel noise = NoiseModel::paperDefault();
    auto params = testParams(fix.ansatz.nParams);

    // Prime the structure the way the noisy energy path does.
    DensityMatrixBackend backend(fix.ansatz.nQubits, noise);
    backend.applyAnsatz(fix.ansatz, params);

    ParameterShiftEngine engine(fix.prob.hamiltonian, fix.ansatz);
    const CacheStats before = globalCircuitCache().stats();
    engine.gradientNoisy(params, noise);
    const CacheStats after = globalCircuitCache().stats();
    // Every shifted compile is an angle rebind of the entry the
    // energy path created — no new synthesis.
    EXPECT_EQ(after.misses, before.misses);
    EXPECT_GT(after.hits, before.hits);
}

TEST(Gradient, ShiftCountMatchesAnsatzStructure)
{
    const Fixture &fix = lih();
    ParameterShiftEngine engine(fix.prob.hamiltonian, fix.ansatz);
    EXPECT_EQ(engine.numShiftedEvaluations(),
              2 * fix.ansatz.rotations.size());
    EXPECT_EQ(engine.unrolledAnsatz().nParams,
              fix.ansatz.rotations.size());
    EXPECT_EQ(engine.unrolledAnsatz().hfMask, fix.ansatz.hfMask);
}

TEST(Gradient, DescentWithAnalyticGradientsReachesFci)
{
    const Fixture &fix = h2();
    const double exact = lanczosGroundEnergy(fix.prob.hamiltonian);
    for (auto method : {VqeDriverOptions::Method::GradientDescent,
                        VqeDriverOptions::Method::Lbfgs}) {
        VqeDriverOptions o;
        o.method = method;
        o.maxIter = 300;
        VqeDriver driver(
            fix.prob.hamiltonian, fix.ansatz, o,
            makeEstimationStrategy(
                "ideal",
                EstimationConfig{&fix.prob.hamiltonian, {}, {}, {}}));
        VqeResult res = driver.run();
        EXPECT_NEAR(res.energy, exact, 1e-5) << int(method);
        EXPECT_TRUE(res.converged) << int(method);
        // The driver counted its shifted evaluations.
        EXPECT_GT(res.evals, 0);
    }
}

TEST(Gradient, WidthAndCountMismatchesFatal)
{
    const Fixture &fix = h2();
    PauliSum wrong(fix.ansatz.nQubits + 2);
    wrong.add(1.0, PauliString(fix.ansatz.nQubits + 2));
    EXPECT_DEATH(ParameterShiftEngine(wrong, fix.ansatz),
                 "width mismatch");

    ParameterShiftEngine engine(fix.prob.hamiltonian, fix.ansatz);
    ExpectationEngine ee(fix.prob.hamiltonian);
    std::vector<double> tooFew(fix.ansatz.nParams - 1, 0.0);
    EXPECT_DEATH(
        engine.gradientStatevector(
            tooFew,
            [&](const Statevector &psi, size_t) {
                return ee.energy(psi);
            }),
        "parameter count");
}
