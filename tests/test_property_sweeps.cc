/**
 * @file
 * Property-based sweeps over randomized inputs: Pauli-algebra laws,
 * Merge-to-Root and SABRE validity/equivalence on random Pauli
 * programs across tree shapes, and simulator-channel invariants.
 * Parameterized over RNG seeds so each instantiation exercises a
 * different random instance.
 */

#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "arch/grid.hh"
#include "common/rng.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/merge_to_root.hh"
#include "compiler/peephole.hh"
#include "compiler/sabre.hh"
#include "compiler/verify.hh"
#include "sim/density_matrix.hh"
#include "sim/statevector.hh"

using namespace qcc;

namespace {

PauliString
randomString(Rng &rng, unsigned n, unsigned min_weight = 0)
{
    while (true) {
        PauliString p(n);
        for (unsigned q = 0; q < n; ++q) {
            switch (rng.index(4)) {
              case 1: p.setOp(q, PauliOp::X); break;
              case 2: p.setOp(q, PauliOp::Y); break;
              case 3: p.setOp(q, PauliOp::Z); break;
              default: break;
            }
        }
        if (p.weight() >= min_weight)
            return p;
    }
}

Ansatz
randomProgram(Rng &rng, unsigned n, unsigned n_strings)
{
    Ansatz a;
    a.nQubits = n;
    a.nParams = n_strings;
    for (unsigned k = 0; k < n_strings; ++k) {
        a.rotations.push_back({k, 1.0, randomString(rng, n, 1)});
        a.excitations.push_back(
            {Excitation::Kind::Single, {0, 0, 0, 0}});
    }
    return a;
}

} // namespace

class SeededProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeededProperty, PauliProductPreservesUnitarity)
{
    Rng rng(GetParam());
    const unsigned n = 5;
    PauliString a = randomString(rng, n);
    PauliString b = randomString(rng, n);
    auto [phase, ab] = a.product(b);
    // |phase| = 1 and (AB)(BA) phase product = +1 on equal strings.
    EXPECT_NEAR(std::abs(phase), 1.0, 1e-14);
    auto [phase2, abba] = ab.product(ab);
    EXPECT_TRUE(abba.isIdentity());
    EXPECT_NEAR(std::abs(phase2 - 1.0), 0.0, 1e-14); // P^2 = I
}

TEST_P(SeededProperty, RotationCircuitMatchesKernel)
{
    Rng rng(GetParam());
    const unsigned n = 4;
    PauliString p = randomString(rng, n, 1);
    double theta = rng.uniform(-1.5, 1.5);

    Statevector direct(n);
    for (auto &amp : direct.amplitudes())
        amp = cplx(rng.gaussian(), rng.gaussian());
    direct.normalize();
    Statevector viaGates = direct;

    direct.applyPauliRotation(theta, p);
    viaGates.applyCircuit(pauliRotationChain(p, theta, n));
    for (size_t i = 0; i < direct.dim(); ++i)
        EXPECT_NEAR(std::abs(direct.amplitudes()[i] -
                             viaGates.amplitudes()[i]),
                    0.0, 1e-11);
}

TEST_P(SeededProperty, MtrValidAndEquivalentOnRandomPrograms)
{
    Rng rng(GetParam());
    const unsigned n = 5;
    Ansatz a = randomProgram(rng, n, 6);
    std::vector<double> params(a.nParams);
    for (auto &x : params)
        x = rng.uniform(-0.4, 0.4);

    for (unsigned treeSize : {5u, 8u}) {
        XTree tree = makeXTree(treeSize);
        MtrResult res =
            mergeToRootCompile(a, params, tree, false);
        EXPECT_TRUE(respectsCoupling(res.circuit, tree.graph));
        Circuit logical = synthesizeChainCircuit(a, params, false);
        EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                             res.initialLayout,
                                             res.finalLayout, 2));
    }
}

TEST_P(SeededProperty, SabreValidAndEquivalentOnRandomPrograms)
{
    Rng rng(GetParam() + 1000);
    const unsigned n = 5;
    Ansatz a = randomProgram(rng, n, 4);
    std::vector<double> params(a.nParams, 0.2);
    Circuit logical = synthesizeChainCircuit(a, params, false);

    XTree tree = makeXTree(8);
    SabreResult res = sabreCompile(logical, tree.graph,
                                   Layout::identity(n, 8));
    EXPECT_TRUE(respectsCoupling(res.circuit, tree.graph));
    EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                         res.initialLayout,
                                         res.finalLayout, 2));
}

TEST_P(SeededProperty, PeepholePreservesRandomCircuits)
{
    Rng rng(GetParam() + 2000);
    const unsigned n = 4;
    Circuit c(n);
    for (int i = 0; i < 60; ++i) {
        switch (rng.index(6)) {
          case 0: c.h(unsigned(rng.index(n))); break;
          case 1: c.x(unsigned(rng.index(n))); break;
          case 2: c.rz(unsigned(rng.index(n)),
                       rng.uniform(-1, 1)); break;
          case 3: c.rx(unsigned(rng.index(n)),
                       rng.uniform(-1, 1)); break;
          case 4: c.s(unsigned(rng.index(n))); break;
          default: {
              unsigned q0 = unsigned(rng.index(n));
              unsigned q1 = (q0 + 1 + unsigned(rng.index(n - 1))) % n;
              c.cnot(q0, q1);
              break;
          }
        }
    }
    Circuit opt = cancelGates(c);
    EXPECT_LE(opt.totalGates(), c.totalGates());

    Statevector sa(n), sb(n);
    for (auto &amp : sa.amplitudes())
        amp = cplx(rng.gaussian(), rng.gaussian());
    sa.normalize();
    sb.amplitudes() = sa.amplitudes();
    sa.applyCircuit(c);
    sb.applyCircuit(opt);
    for (size_t i = 0; i < sa.dim(); ++i)
        EXPECT_NEAR(std::abs(sa.amplitudes()[i] -
                             sb.amplitudes()[i]),
                    0.0, 1e-10);
}

TEST_P(SeededProperty, DepolarizingChannelContractsPurity)
{
    Rng rng(GetParam() + 3000);
    const unsigned n = 3;
    DensityMatrix rho(n, rng.index(1u << n));
    Circuit c(n);
    c.h(0);
    c.cnot(0, 1);
    c.cnot(1, 2);
    rho.applyCircuit(c, {});
    double purity = rho.purity();
    for (int step = 0; step < 4; ++step) {
        unsigned qa = unsigned(rng.index(n));
        unsigned qb = (qa + 1 + unsigned(rng.index(n - 1))) % n;
        rho.depolarize2(qa, qb, 0.02 + 0.1 * rng.uniform());
        double next = rho.purity();
        EXPECT_LE(next, purity + 1e-12);
        EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
        purity = next;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));
