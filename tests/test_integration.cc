/**
 * @file
 * Cross-module integration tests: the full pipeline from molecule to
 * compiled circuit, energy equivalence between the statevector path
 * and the compiled-circuit path, and the co-design claims in
 * miniature (compressed + MtR beats chain + SABRE on overhead while
 * matching the physics).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "ansatz/compression.hh"
#include "arch/grid.hh"
#include "chem/molecules.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/merge_to_root.hh"
#include "compiler/sabre.hh"
#include "compiler/verify.hh"
#include "ferm/hamiltonian.hh"
#include "sim/lanczos.hh"
#include "vqe_test_util.hh"
#include "vqe/vqe.hh"

using namespace qcc;

TEST(Integration, CompiledCircuitReproducesVqeEnergy)
{
    // Run VQE with fast kernels, then execute the *compiled physical
    // circuit* on the simulator and re-measure the energy through
    // the final layout permutation: both must agree.
    MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    VqeResult res = qcc_test::minimizeIdeal(prob.hamiltonian, a);

    XTree tree = makeXTree(5);
    MtrResult mtr = mergeToRootCompile(a, res.params, tree, true);

    Statevector sv(5);
    // Start from |0...0> on the device; the HF X layer is inside the
    // compiled circuit.
    sv.applyCircuit(mtr.circuit);

    // Measure H mapped through the final layout.
    PauliSum hPhys(5);
    for (const auto &t : prob.hamiltonian.terms()) {
        PauliString p(5);
        for (unsigned q = 0; q < prob.nQubits; ++q)
            p.setOp(mtr.finalLayout.phys(q), t.string.op(q));
        hPhys.add(t.coeff, p);
    }
    EXPECT_NEAR(sv.expectation(hPhys), res.energy, 1e-9);
}

TEST(Integration, LiHDissociationCurveShape)
{
    // The Figure 3 landscape: a bound minimum between short and
    // stretched geometries for LiH with the 50% compressed ansatz.
    const auto &entry = benchmarkMolecule("LiH");
    std::vector<double> bonds{1.1, 1.6, 2.6};
    std::vector<double> energies;
    for (double b : bonds) {
        MolecularProblem prob = buildMolecularProblem(entry, b);
        Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
        CompressedAnsatz c =
            compressAnsatz(full, prob.hamiltonian, 0.5);
        energies.push_back(
            qcc_test::minimizeIdeal(prob.hamiltonian, c.ansatz).energy);
    }
    EXPECT_LT(energies[1], energies[0]);
    EXPECT_LT(energies[1], energies[2]);
}

TEST(Integration, ImportanceBeatsRandomAtEqualBudget)
{
    // Section VI-C: importance-selected 50% should be at least as
    // accurate as the mean of random 50% selections on LiH.
    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);

    CompressedAnsatz smart =
        compressAnsatz(full, prob.hamiltonian, 0.5);
    double eSmart =
        qcc_test::minimizeIdeal(prob.hamiltonian, smart.ansatz).energy;

    double eRandSum = 0.0;
    const int trials = 3;
    for (int t = 0; t < trials; ++t) {
        Rng rng(100 + t);
        CompressedAnsatz rnd = randomCompress(full, 0.5, rng);
        eRandSum +=
            qcc_test::minimizeIdeal(prob.hamiltonian, rnd.ansatz).energy;
    }
    EXPECT_LE(eSmart, eRandSum / trials + 1e-9);
}

TEST(Integration, MtrOverheadBelowSabre)
{
    // Table II in miniature: NaH at 50% compression, XTree17Q.
    const auto &entry = benchmarkMolecule("NaH");
    MolecularProblem prob =
        buildMolecularProblem(entry, entry.equilibriumBond);
    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    CompressedAnsatz comp =
        compressAnsatz(full, prob.hamiltonian, 0.5);

    std::vector<double> params(comp.ansatz.nParams, 0.0);
    XTree tree = makeXTree(17);

    MtrResult mtr = mergeToRootCompile(comp.ansatz, params, tree);
    Circuit logical = synthesizeChainCircuit(comp.ansatz, params);
    SabreResult sab = sabreCompile(
        logical, tree.graph,
        Layout::identity(logical.numQubits(), 17));

    EXPECT_TRUE(respectsCoupling(mtr.circuit, tree.graph));
    EXPECT_TRUE(respectsCoupling(sab.circuit, tree.graph));
    EXPECT_LT(mtr.overheadCnots(), sab.overheadCnots() / 4)
        << "MtR should dominate general-purpose routing on trees";
}

TEST(Integration, EndToEndNaHGroundState)
{
    // Medium-size end-to-end: NaH (8 qubits) 50% ansatz reaches
    // within chemical-accuracy-scale error of the exact value.
    const auto &entry = benchmarkMolecule("NaH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.9);
    double exact = lanczosGroundEnergy(prob.hamiltonian);

    Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
    CompressedAnsatz comp =
        compressAnsatz(full, prob.hamiltonian, 0.5);
    VqeResult res = qcc_test::minimizeIdeal(prob.hamiltonian, comp.ansatz);

    EXPECT_GE(res.energy, exact - 1e-9);
    EXPECT_LT(res.energy - exact, 5e-3); // paper: ~0.05% level
}

TEST(Integration, QasmExportOfCompiledProgram)
{
    // The compiled artifact exports to OpenQASM without SWAPs (all
    // lowered), ready for an external toolchain.
    MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
    std::vector<double> params(a.nParams, 0.1);
    XTree tree = makeXTree(5);
    MtrResult mtr = mergeToRootCompile(a, params, tree, true);
    std::string qasm = mtr.circuit.toQasm();
    EXPECT_NE(qasm.find("qreg q[5];"), std::string::npos);
    EXPECT_EQ(qasm.find("swap"), std::string::npos);
}
