/**
 * @file
 * Unit tests for the dense matrix type and linear algebra helpers
 * (Jacobi eigensolver, linear solve, inverse square root).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/linalg.hh"
#include "common/matrix.hh"
#include "common/rng.hh"

using namespace qcc;

TEST(Matrix, BasicOps)
{
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    Matrix b = Matrix::identity(2) * 2.0;
    Matrix c = a * b;
    EXPECT_NEAR(c(0, 0), 2, 1e-14);
    EXPECT_NEAR(c(1, 1), 8, 1e-14);
    EXPECT_NEAR(a.trace(), 5, 1e-14);
    EXPECT_NEAR(a.t()(0, 1), 3, 1e-14);
    EXPECT_NEAR((a - a).maxAbs(), 0.0, 1e-14);
}

TEST(LinAlg, EigenSymKnownMatrix)
{
    // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
    Matrix a(2, 2);
    a(0, 0) = 2;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 2;
    EigenSym e = eigenSym(a);
    EXPECT_NEAR(e.values[0], 1.0, 1e-12);
    EXPECT_NEAR(e.values[1], 3.0, 1e-12);
}

TEST(LinAlg, EigenSymReconstructs)
{
    Rng rng(5);
    const size_t n = 8;
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i; j < n; ++j)
            a(i, j) = a(j, i) = rng.gaussian();

    EigenSym e = eigenSym(a);
    // Check A v_k = w_k v_k for every eigenpair.
    for (size_t k = 0; k < n; ++k) {
        for (size_t i = 0; i < n; ++i) {
            double av = 0;
            for (size_t j = 0; j < n; ++j)
                av += a(i, j) * e.vectors(j, k);
            EXPECT_NEAR(av, e.values[k] * e.vectors(i, k), 1e-9);
        }
    }
    // Eigenvalues ascending.
    for (size_t k = 1; k < n; ++k)
        EXPECT_LE(e.values[k - 1], e.values[k] + 1e-12);
}

TEST(LinAlg, SolveLinearRandomSystem)
{
    Rng rng(7);
    const size_t n = 6;
    Matrix a(n, n);
    std::vector<double> xTrue(n);
    for (size_t i = 0; i < n; ++i) {
        xTrue[i] = rng.gaussian();
        for (size_t j = 0; j < n; ++j)
            a(i, j) = rng.gaussian();
    }
    std::vector<double> b(n, 0.0);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            b[i] += a(i, j) * xTrue[j];

    std::vector<double> x = solveLinear(a, b);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], xTrue[i], 1e-9);
}

TEST(LinAlg, InvSqrtSym)
{
    // S^{-1/2} S S^{-1/2} = I for an SPD matrix.
    Rng rng(11);
    const size_t n = 5;
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            m(i, j) = rng.gaussian();
    Matrix s = m * m.t() + Matrix::identity(n) * 0.5;

    Matrix x = invSqrtSym(s);
    Matrix check = x * s * x;
    EXPECT_NEAR((check - Matrix::identity(n)).maxAbs(), 0.0, 1e-9);
}
