/**
 * @file
 * Persistent-store tests: circuit-entry round trips and every
 * corruption path (truncation, version skew, garbage, key
 * mismatch), CircuitCache write-through and disk promotion,
 * molecular-problem round trips against fresh builds, single-flight
 * memoization under concurrency, concurrent writer/reader races on
 * one entry, and byte-identical sweep results with the store off,
 * cold, and warm.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

#include "ansatz/uccsd.hh"
#include "arch/xtree.hh"
#include "chem/molecules.hh"
#include "common/binio.hh"
#include "common/logging.hh"
#include "compiler/pipeline.hh"
#include "ferm/hamiltonian.hh"
#include "store/circuit_store.hh"
#include "store/problem_store.hh"
#include "store/store.hh"
#include "sweep/sweep_engine.hh"

using namespace qcc;

namespace {

/**
 * Scoped store root: a unique scratch directory while alive, the
 * store disabled (and the directory deleted, and the in-memory
 * caches that may now hold disk-promoted entries cleared) on exit,
 * so tests cannot leak state into each other.
 */
class StoreDirGuard
{
  public:
    StoreDirGuard()
    {
        static std::atomic<int> seq{0};
        dir = (std::filesystem::temp_directory_path() /
               ("qcc_test_store_" + std::to_string(::getpid()) +
                "_" + std::to_string(seq++)))
                  .string();
        setStoreDir(dir);
        setStoreEnabled(true);
    }

    ~StoreDirGuard()
    {
        setStoreDir("");
        globalCircuitCache().clear();
        globalProblemStore().clearMemory();
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    const std::string &path() const { return dir; }

  private:
    std::string dir;
};

CachedCompile
sampleEntry()
{
    Circuit c(3);
    c.h(0);
    c.cnot(0, 1);
    c.rz(1, 0.25);
    c.cnot(1, 2);
    c.rz(2, -1.5);
    c.swap(0, 2);
    CachedCompile e;
    e.circuit = c;
    e.rzIndex = {2, 4};
    e.initialLayout = Layout::fromLogToPhys({2, 0, 1}, 4);
    e.finalLayout = Layout::fromLogToPhys({1, 0, 3}, 4);
    e.swapCount = 1;
    return e;
}

CacheKey
sampleKey(uint64_t salt = 7)
{
    CacheKey k;
    k.add(0x1234);
    k.add(salt);
    k.add(0xfeed);
    return k;
}

::testing::AssertionResult
entriesIdentical(const CachedCompile &a, const CachedCompile &b)
{
    if (a.circuit.numQubits() != b.circuit.numQubits() ||
        a.circuit.size() != b.circuit.size())
        return ::testing::AssertionFailure() << "circuit shape";
    for (size_t i = 0; i < a.circuit.size(); ++i) {
        const Gate &ga = a.circuit.gates()[i];
        const Gate &gb = b.circuit.gates()[i];
        if (ga.kind != gb.kind || ga.q0 != gb.q0 ||
            ga.q1 != gb.q1 || ga.angle != gb.angle)
            return ::testing::AssertionFailure()
                   << "gate " << i << ": " << ga.str() << " vs "
                   << gb.str();
    }
    if (a.rzIndex != b.rzIndex)
        return ::testing::AssertionFailure() << "rzIndex";
    if (a.swapCount != b.swapCount)
        return ::testing::AssertionFailure() << "swapCount";
    auto sameLayout = [](const Layout &la, const Layout &lb) {
        if (la.numLogical() != lb.numLogical() ||
            la.numPhysical() != lb.numPhysical())
            return false;
        for (unsigned q = 0; q < la.numLogical(); ++q)
            if (la.phys(q) != lb.phys(q))
                return false;
        return true;
    };
    if (!sameLayout(a.initialLayout, b.initialLayout))
        return ::testing::AssertionFailure() << "initial layout";
    if (!sameLayout(a.finalLayout, b.finalLayout))
        return ::testing::AssertionFailure() << "final layout";
    return ::testing::AssertionSuccess();
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), std::streamsize(bytes.size()));
}

std::string
readBytes(const std::string &path)
{
    std::string out;
    EXPECT_TRUE(readFileBytes(path, out)) << path;
    return out;
}

} // namespace

TEST(CircuitStore, SerializeRoundTrip)
{
    const CacheKey key = sampleKey();
    const CachedCompile entry = sampleEntry();
    const std::string bytes = serializeCachedCompile(key, entry);

    CachedCompile out;
    ASSERT_TRUE(deserializeCachedCompile(bytes, key, out));
    EXPECT_TRUE(entriesIdentical(entry, out));
}

TEST(CircuitStore, KeyMismatchIsMiss)
{
    const std::string bytes =
        serializeCachedCompile(sampleKey(1), sampleEntry());
    CachedCompile out;
    // A copied/renamed file (or filename-hash collision) carries the
    // wrong key words and must demote to a miss.
    EXPECT_FALSE(deserializeCachedCompile(bytes, sampleKey(2), out));
}

TEST(CircuitStore, TruncationIsMiss)
{
    const CacheKey key = sampleKey();
    const std::string bytes =
        serializeCachedCompile(key, sampleEntry());
    CachedCompile out;
    for (size_t n : {size_t(0), size_t(3), size_t(11),
                     bytes.size() / 2, bytes.size() - 1})
        EXPECT_FALSE(deserializeCachedCompile(bytes.substr(0, n),
                                              key, out))
            << "prefix " << n;
}

TEST(CircuitStore, VersionSkewIsMiss)
{
    const CacheKey key = sampleKey();
    std::string bytes = serializeCachedCompile(key, sampleEntry());
    // Bump the version field (bytes 4..8) and re-seal the checksum,
    // mimicking an entry written by a future format revision.
    bytes[4] = char(bytes[4] + 1);
    const uint64_t sum = fnv1a(bytes.data(), bytes.size() - 8);
    for (int i = 0; i < 8; ++i)
        bytes[bytes.size() - 8 + i] = char(sum >> (8 * i));
    CachedCompile out;
    EXPECT_FALSE(deserializeCachedCompile(bytes, key, out));
}

TEST(CircuitStore, BitFlipIsMiss)
{
    const CacheKey key = sampleKey();
    const std::string good =
        serializeCachedCompile(key, sampleEntry());
    CachedCompile out;
    // Any single corrupted byte must fail the checksum.
    for (size_t i = 0; i < good.size(); i += 7) {
        std::string bad = good;
        bad[i] = char(bad[i] ^ 0x5a);
        EXPECT_FALSE(deserializeCachedCompile(bad, key, out))
            << "byte " << i;
    }
    EXPECT_FALSE(deserializeCachedCompile(
        std::string(64, '\x42'), key, out));
}

TEST(CircuitStore, BadEntryIsDeletedAndRecovered)
{
    StoreDirGuard guard;
    DiskCircuitStore store;
    const CacheKey key = sampleKey();
    const CachedCompile entry = sampleEntry();
    ASSERT_TRUE(store.save(key, entry));

    const std::string path = store.pathFor(key);
    ASSERT_FALSE(path.empty());
    ASSERT_TRUE(std::filesystem::exists(path));

    const StoreStats before = storeStats();
    writeBytes(path, readBytes(path).substr(0, 10));
    CachedCompile out;
    EXPECT_FALSE(store.load(key, out));
    EXPECT_FALSE(std::filesystem::exists(path)); // dropped
    EXPECT_EQ(storeStats().circuitBadEntries,
              before.circuitBadEntries + 1);

    // The slot is reusable after the bad entry is dropped.
    ASSERT_TRUE(store.save(key, entry));
    ASSERT_TRUE(store.load(key, out));
    EXPECT_TRUE(entriesIdentical(entry, out));
}

TEST(CircuitStore, DisabledStoreNoops)
{
    setStoreDir("");
    DiskCircuitStore store;
    CachedCompile out;
    EXPECT_EQ(store.pathFor(sampleKey()), "");
    EXPECT_FALSE(store.save(sampleKey(), sampleEntry()));
    EXPECT_FALSE(store.load(sampleKey(), out));
}

TEST(CircuitStore, CacheWriteThroughAndPromotion)
{
    setVerbose(false);
    StoreDirGuard guard;
    globalCircuitCache().clear();

    const auto &entry = benchmarkMolecule("H2");
    MolecularProblem prob =
        buildMolecularProblem(entry, entry.equilibriumBond);
    Ansatz ansatz = buildUccsd(prob.nSpatial, prob.nElectrons);
    std::vector<double> params(ansatz.nParams, 0.0);
    for (size_t i = 0; i < params.size(); ++i)
        params[i] = 0.1 * double(i + 1);

    XTree tree = makeXTree(7);
    CompilerPipeline pipeline(tree);

    const CacheStats s0 = globalCircuitCache().stats();
    CompileResult fresh = pipeline.compile(ansatz, params);
    const CacheStats s1 = globalCircuitCache().stats();
    EXPECT_EQ(s1.diskStores, s0.diskStores + 1); // write-through

    // A new process is simulated by dropping the memory table; the
    // recompile must be served by the persistent tier and match the
    // fresh compile gate for gate.
    globalCircuitCache().clear();
    CompileResult warm = pipeline.compile(ansatz, params);
    const CacheStats s2 = globalCircuitCache().stats();
    EXPECT_EQ(s2.diskHits, s1.diskHits + 1);
    EXPECT_EQ(s2.diskStores, s1.diskStores); // promotion, no rewrite

    ASSERT_EQ(fresh.circuit.size(), warm.circuit.size());
    for (size_t i = 0; i < fresh.circuit.size(); ++i) {
        const Gate &ga = fresh.circuit.gates()[i];
        const Gate &gb = warm.circuit.gates()[i];
        EXPECT_TRUE(ga.kind == gb.kind && ga.q0 == gb.q0 &&
                    ga.q1 == gb.q1 && ga.angle == gb.angle)
            << "gate " << i;
    }
    EXPECT_EQ(fresh.swapCount, warm.swapCount);

    // Rebinding must work on disk-served structures too.
    for (auto &p : params)
        p += 0.5;
    CompileResult rebound = pipeline.compile(ansatz, params);
    EXPECT_EQ(rebound.circuit.size(), fresh.circuit.size());
}

TEST(ProblemStore, RoundTripMatchesFreshBuild)
{
    setVerbose(false);
    StoreDirGuard guard;
    const auto &entry = benchmarkMolecule("H2");
    const double bond = 0.8125; // off-catalog bond: unique key

    const StoreStats s0 = storeStats();
    MolecularProblem built =
        globalProblemStore().get(entry, bond);
    const StoreStats s1 = storeStats();
    EXPECT_EQ(s1.problemBuilds, s0.problemBuilds + 1);
    EXPECT_EQ(s1.problemDiskWrites, s0.problemDiskWrites + 1);

    globalProblemStore().clearMemory();
    MolecularProblem loaded =
        globalProblemStore().get(entry, bond);
    const StoreStats s2 = storeStats();
    EXPECT_EQ(s2.problemDiskHits, s1.problemDiskHits + 1);
    EXPECT_EQ(s2.problemBuilds, s1.problemBuilds); // no rebuild

    // Bit-exact round trip against the direct build.
    MolecularProblem direct = buildMolecularProblem(entry, bond);
    EXPECT_EQ(loaded.nSpatial, direct.nSpatial);
    EXPECT_EQ(loaded.nElectrons, direct.nElectrons);
    EXPECT_EQ(loaded.nQubits, direct.nQubits);
    EXPECT_EQ(loaded.hartreeFockEnergy, direct.hartreeFockEnergy);
    ASSERT_EQ(loaded.hamiltonian.numTerms(),
              direct.hamiltonian.numTerms());
    for (size_t t = 0; t < direct.hamiltonian.numTerms(); ++t) {
        const PauliTerm &a = loaded.hamiltonian.terms()[t];
        const PauliTerm &b = direct.hamiltonian.terms()[t];
        EXPECT_EQ(a.coeff, b.coeff) << "term " << t;
        EXPECT_EQ(a.string, b.string) << "term " << t;
    }
    const MoIntegrals &ia = loaded.activeSpace.active;
    const MoIntegrals &ib = direct.activeSpace.active;
    ASSERT_EQ(ia.nOrb, ib.nOrb);
    EXPECT_EQ(ia.coreEnergy, ib.coreEnergy);
    EXPECT_EQ(ia.eri, ib.eri);
    for (size_t r = 0; r < ia.nOrb; ++r)
        for (size_t c = 0; c < ia.nOrb; ++c)
            EXPECT_EQ(ia.h(r, c), ib.h(r, c));
    EXPECT_EQ(loaded.activeSpace.nActiveElectrons,
              direct.activeSpace.nActiveElectrons);
    EXPECT_EQ(loaded.activeSpace.frozenMos,
              direct.activeSpace.frozenMos);
    EXPECT_EQ(loaded.activeSpace.activeMos,
              direct.activeSpace.activeMos);
    EXPECT_EQ(loaded.activeSpace.removedMos,
              direct.activeSpace.removedMos);
}

TEST(ProblemStore, CorruptEntryRebuilds)
{
    setVerbose(false);
    StoreDirGuard guard;
    const auto &entry = benchmarkMolecule("H2");
    const double bond = 0.8750;

    globalProblemStore().get(entry, bond);
    const std::string path =
        globalProblemStore().pathFor(entry, bond);
    ASSERT_FALSE(path.empty());
    ASSERT_TRUE(std::filesystem::exists(path));
    writeBytes(path, std::string(128, '\x7f'));

    globalProblemStore().clearMemory();
    const StoreStats before = storeStats();
    MolecularProblem rebuilt =
        globalProblemStore().get(entry, bond);
    const StoreStats after = storeStats();
    EXPECT_EQ(after.problemBadEntries,
              before.problemBadEntries + 1);
    EXPECT_EQ(after.problemBuilds, before.problemBuilds + 1);
    EXPECT_GT(rebuilt.hamiltonian.numTerms(), 0u);
}

TEST(ProblemStore, SingleFlightUnderConcurrency)
{
    setVerbose(false);
    setStoreDir(""); // memo-only: isolate the single-flight logic
    globalProblemStore().clearMemory();
    const auto &entry = benchmarkMolecule("H2");
    const double bond = 0.9375;

    const StoreStats before = storeStats();
    std::vector<std::thread> workers;
    std::atomic<int> ok{0};
    for (int t = 0; t < 8; ++t)
        workers.emplace_back([&] {
            MolecularProblem p = globalProblemStore().get(entry, bond);
            if (p.nQubits == 4)
                ++ok;
        });
    for (auto &w : workers)
        w.join();
    const StoreStats after = storeStats();

    EXPECT_EQ(ok.load(), 8);
    // Exactly one thread built; the other seven shared the flight.
    EXPECT_EQ(after.problemBuilds, before.problemBuilds + 1);
    EXPECT_EQ(after.problemMemHits, before.problemMemHits + 7);
    globalProblemStore().clearMemory();
}

TEST(CircuitStore, ConcurrentWritersAndReadersAgree)
{
    StoreDirGuard guard;
    const CacheKey key = sampleKey();
    const CachedCompile entry = sampleEntry();

    // Writers rewrite one path while readers hammer it: with atomic
    // renames every load must be a miss or the complete entry.
    std::atomic<bool> stop{false};
    std::atomic<int> badLoads{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([&] {
            DiskCircuitStore store;
            for (int i = 0; i < 50; ++i)
                store.save(key, entry);
        });
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([&] {
            DiskCircuitStore store;
            while (!stop.load()) {
                CachedCompile out;
                if (store.load(key, out) &&
                    !entriesIdentical(entry, out))
                    ++badLoads;
            }
        });
    for (int t = 0; t < 4; ++t)
        workers[size_t(t)].join();
    stop = true;
    for (size_t t = 4; t < workers.size(); ++t)
        workers[t].join();

    EXPECT_EQ(badLoads.load(), 0);
    CachedCompile out;
    DiskCircuitStore store;
    ASSERT_TRUE(store.load(key, out));
    EXPECT_TRUE(entriesIdentical(entry, out));
}

TEST(Store, SweepResultsByteIdenticalAcrossTiers)
{
    setVerbose(false);
    SweepSpec spec;
    spec.name = "store_identity";
    spec.emitTimings = false; // documents become pure spec+seed
    spec.base.molecule = "H2";
    spec.base.bond = 0.74;
    spec.base.mode = "sampled";
    spec.base.optimizer = "spsa";
    spec.base.spsaIter = 3;
    spec.base.shots = 256;
    spec.base.reference = false;
    SweepAxis seeds;
    seeds.field = "seed";
    for (int s = 1; s <= 3; ++s) {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = double(s);
        v.text = std::to_string(s);
        seeds.values.push_back(v);
    }
    spec.axes.push_back(seeds);

    auto runOnce = [&] {
        globalCircuitCache().clear();
        globalProblemStore().clearMemory();
        SweepEngineOptions opts;
        opts.concurrency = 1;
        SweepEngine engine(spec, opts);
        return engine.run().json();
    };

    setStoreDir("");
    const std::string off = runOnce();

    StoreDirGuard guard;
    const std::string cold = runOnce(); // populates the store
    const std::string warm = runOnce(); // served from the store
    const StoreStats stats = storeStats();
    EXPECT_GT(stats.circuitDiskHits + stats.problemDiskHits, 0u);

    EXPECT_EQ(off, cold);
    EXPECT_EQ(off, warm);
}
