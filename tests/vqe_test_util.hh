/**
 * @file
 * Shared VQE test plumbing: one place for the strategy-injected
 * driver construction the suites repeat (the non-deprecated
 * replacement for the deleted runVqe wrappers), so a change to
 * EstimationConfig or driver construction is edited once.
 */

#ifndef QCC_TESTS_VQE_TEST_UTIL_HH
#define QCC_TESTS_VQE_TEST_UTIL_HH

#include "vqe/driver.hh"
#include "vqe/estimation.hh"

namespace qcc_test {

/** Drive h/ansatz through a named estimation mode. */
inline qcc::VqeResult
minimizeMode(const char *mode, const qcc::PauliSum &h,
             const qcc::Ansatz &a, qcc::VqeDriverOptions opts = {})
{
    qcc::VqeDriver driver(
        h, a, opts,
        qcc::makeEstimationStrategy(
            mode, qcc::EstimationConfig{&h, opts.noise,
                                        opts.sampling, {}}));
    return driver.run();
}

/** Analytic ideal-mode minimization (the old runVqe default). */
inline qcc::VqeResult
minimizeIdeal(const qcc::PauliSum &h, const qcc::Ansatz &a)
{
    return minimizeMode("ideal", h, a);
}

} // namespace qcc_test

#endif // QCC_TESTS_VQE_TEST_UTIL_HH
