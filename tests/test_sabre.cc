/**
 * @file
 * Unit tests for the SABRE baseline router: validity (coupling and
 * unitary equivalence) on trees and grids, zero overhead for
 * already-mapped circuits, and reverse-traversal layout refinement.
 */

#include <gtest/gtest.h>

#include "ansatz/uccsd.hh"
#include "arch/grid.hh"
#include "arch/xtree.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/sabre.hh"
#include "compiler/verify.hh"

using namespace qcc;

namespace {

Circuit
ghzCircuit(unsigned n)
{
    Circuit c(n);
    c.h(0);
    for (unsigned q = 0; q + 1 < n; ++q)
        c.cnot(q, q + 1);
    return c;
}

Circuit
allToAllCircuit(unsigned n)
{
    Circuit c(n);
    for (unsigned a = 0; a < n; ++a)
        for (unsigned b = a + 1; b < n; ++b)
            c.cnot(a, b);
    return c;
}

} // namespace

TEST(Sabre, AdjacentGatesNeedNoSwaps)
{
    // A GHZ chain on a path-shaped tree with identity layout.
    XTree tree = makeXTree(5, 1, 1); // pure path
    Circuit logical = ghzCircuit(5);
    SabreResult res = sabreCompile(
        logical, tree.graph, Layout::identity(5, 5));
    EXPECT_EQ(res.swapCount, 0u);
    EXPECT_TRUE(respectsCoupling(res.circuit, tree.graph));
}

TEST(Sabre, RoutesAllToAllOnTree)
{
    XTree tree = makeXTree(8);
    Circuit logical = allToAllCircuit(8);
    SabreResult res = sabreCompile(logical, tree.graph,
                                   Layout::identity(8, 8));
    EXPECT_TRUE(respectsCoupling(res.circuit, tree.graph));
    EXPECT_GT(res.swapCount, 0u);
    EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                         res.initialLayout,
                                         res.finalLayout));
}

TEST(Sabre, RoutesOnGrid17Q)
{
    CouplingGraph g = makeGrid17Q();
    Circuit logical = allToAllCircuit(10);
    SabreResult res =
        sabreCompile(logical, g, Layout::identity(10, 17));
    EXPECT_TRUE(respectsCoupling(res.circuit, g));
    EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                         res.initialLayout,
                                         res.finalLayout));
}

TEST(Sabre, SingleQubitGatesPassThrough)
{
    XTree tree = makeXTree(5);
    Circuit logical(3);
    logical.h(0);
    logical.rz(1, 0.4);
    logical.x(2);
    SabreResult res = sabreCompile(logical, tree.graph,
                                   Layout::identity(3, 5));
    EXPECT_EQ(res.swapCount, 0u);
    EXPECT_EQ(res.circuit.totalGates(), 3u);
}

TEST(Sabre, PreservesGateDependencies)
{
    // Two CNOTs sharing a qubit must stay ordered; verified via
    // unitary equivalence of a circuit where order matters.
    XTree tree = makeXTree(5);
    Circuit logical(4);
    logical.cnot(0, 1);
    logical.h(1);
    logical.cnot(1, 2);
    logical.cnot(0, 3);
    SabreResult res = sabreCompile(logical, tree.graph,
                                   Layout::identity(4, 5));
    EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                         res.initialLayout,
                                         res.finalLayout));
}

TEST(Sabre, UccsdChainCircuitOnXTree)
{
    // The paper's baseline flow: chain-synthesized UCCSD routed by
    // SABRE onto XTree17Q.
    Ansatz a = buildUccsd(3, 2);
    std::vector<double> params(a.nParams, 0.05);
    Circuit logical = synthesizeChainCircuit(a, params, true);
    XTree tree = makeXTree(17);
    SabreResult res = sabreCompile(
        logical, tree.graph,
        Layout::identity(logical.numQubits(), 17));
    EXPECT_TRUE(respectsCoupling(res.circuit, tree.graph));
    EXPECT_TRUE(checkCompiledEquivalence(res.circuit, logical,
                                         res.initialLayout,
                                         res.finalLayout));
}

TEST(Sabre, ReverseTraversalLayoutHelps)
{
    // The refined initial layout should not be catastrophically
    // worse than identity, and usually reduces swaps.
    Ansatz a = buildUccsd(3, 2);
    std::vector<double> params(a.nParams, 0.05);
    Circuit logical = synthesizeChainCircuit(a, params, true);
    XTree tree = makeXTree(17);

    SabreResult ident = sabreCompile(
        logical, tree.graph, Layout::identity(6, 17));
    Layout refined =
        sabreReverseTraversalLayout(logical, tree.graph, 1);
    SabreResult rt = sabreCompile(logical, tree.graph, refined);
    EXPECT_TRUE(respectsCoupling(rt.circuit, tree.graph));
    EXPECT_LE(double(rt.swapCount),
              1.5 * double(ident.swapCount) + 5.0);
}

TEST(Sabre, OverheadAccountsThreeCnotsPerSwap)
{
    XTree tree = makeXTree(8);
    Circuit logical = allToAllCircuit(8);
    SabreResult res = sabreCompile(logical, tree.graph,
                                   Layout::identity(8, 8));
    EXPECT_EQ(res.overheadCnots(), 3 * res.swapCount);
    EXPECT_EQ(res.circuit.cnotCount(true) - logical.cnotCount(true),
              res.overheadCnots());
}
