/**
 * @file
 * Unit tests for the McMurchie-Davidson integral engine: Hermite
 * coefficients, known closed-form Gaussian integrals, matrix
 * symmetries, and ERI permutational symmetry.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "chem/integrals.hh"
#include "chem/molecules.hh"

using namespace qcc;

TEST(HermiteE, SSOverlapIsGaussianProduct)
{
    // E_0^{00} = exp(-q AB^2) with q = ab/(a+b).
    double a = 0.8, b = 1.3, ab = 0.9;
    auto e = hermiteE(0, 0, a, b, ab);
    ASSERT_EQ(e.size(), 1u);
    EXPECT_NEAR(e[0], std::exp(-a * b / (a + b) * ab * ab), 1e-14);
}

TEST(HermiteE, SameCenterPOverlap)
{
    // <p|p> same center: S = E_0^{11} sqrt(pi/p) must equal
    // 1/(2p) sqrt(pi/p).
    double a = 0.7, b = 0.4;
    auto e = hermiteE(1, 1, a, b, 0.0);
    EXPECT_NEAR(e[0], 1.0 / (2 * (a + b)), 1e-14);
}

TEST(Integrals, H2OverlapKineticKnown)
{
    // Two unit-exponent s-Gaussians: closed forms exist for S and T.
    // Use the basis machinery on an H2-like system with our fitted
    // basis and check qualitative invariants instead: S diagonal = 1,
    // 0 < S offdiag < 1, T positive definite diagonal.
    Molecule mol = benchmarkMolecule("H2").build(0.74);
    BasisSet basis = BasisSet::stoNg(mol);
    IntegralTables ints = computeIntegrals(basis, mol);

    ASSERT_EQ(ints.nbf, 2u);
    EXPECT_NEAR(ints.s(0, 0), 1.0, 1e-8);
    EXPECT_NEAR(ints.s(1, 1), 1.0, 1e-8);
    EXPECT_GT(ints.s(0, 1), 0.5); // strongly overlapping at 0.74 A
    EXPECT_LT(ints.s(0, 1), 0.8);
    EXPECT_GT(ints.t(0, 0), 0.0);
    EXPECT_LT(ints.v(0, 0), 0.0); // attraction is negative
}

TEST(Integrals, OverlapShrinksWithDistance)
{
    double prev = 1.0;
    for (double d : {0.5, 1.0, 1.5, 2.5}) {
        Molecule mol = benchmarkMolecule("H2").build(d);
        BasisSet basis = BasisSet::stoNg(mol);
        IntegralTables ints = computeIntegrals(basis, mol);
        EXPECT_LT(ints.s(0, 1), prev);
        prev = ints.s(0, 1);
    }
}

TEST(Integrals, MatricesSymmetric)
{
    Molecule mol = benchmarkMolecule("H2O").build(0.96);
    BasisSet basis = BasisSet::stoNg(mol);
    IntegralTables ints = computeIntegrals(basis, mol);
    for (size_t i = 0; i < ints.nbf; ++i) {
        for (size_t j = 0; j < ints.nbf; ++j) {
            EXPECT_NEAR(ints.s(i, j), ints.s(j, i), 1e-10);
            EXPECT_NEAR(ints.t(i, j), ints.t(j, i), 1e-10);
            EXPECT_NEAR(ints.v(i, j), ints.v(j, i), 1e-10);
        }
    }
}

TEST(Integrals, EriPermutationalSymmetry)
{
    Molecule mol = benchmarkMolecule("LiH").build(1.6);
    BasisSet basis = BasisSet::stoNg(mol);
    IntegralTables ints = computeIntegrals(basis, mol);
    const size_t n = ints.nbf;
    // Spot-check the full 8-fold symmetry on a subset.
    for (size_t i = 0; i < n; i += 2) {
        for (size_t j = 0; j < n; j += 3) {
            for (size_t k = 0; k < n; k += 2) {
                for (size_t l = 0; l < n; l += 3) {
                    double ref = ints.eriAt(i, j, k, l);
                    EXPECT_NEAR(ints.eriAt(j, i, k, l), ref, 1e-10);
                    EXPECT_NEAR(ints.eriAt(i, j, l, k), ref, 1e-10);
                    EXPECT_NEAR(ints.eriAt(k, l, i, j), ref, 1e-10);
                    EXPECT_NEAR(ints.eriAt(l, k, j, i), ref, 1e-10);
                }
            }
        }
    }
}

TEST(Integrals, EriDiagonalPositive)
{
    // (ii|ii) is a Coulomb self-repulsion: strictly positive.
    Molecule mol = benchmarkMolecule("HF").build(0.92);
    BasisSet basis = BasisSet::stoNg(mol);
    IntegralTables ints = computeIntegrals(basis, mol);
    for (size_t i = 0; i < ints.nbf; ++i)
        EXPECT_GT(ints.eriAt(i, i, i, i), 0.0);
}

TEST(Integrals, H2EriKnownMagnitudes)
{
    // STO-3G H2 at 0.74 A: (11|11) ~ 0.775 Ha (textbook value ~0.7746
    // for the true STO-3G contraction; our re-fitted basis matches to
    // a few mHa).
    Molecule mol = benchmarkMolecule("H2").build(0.74);
    BasisSet basis = BasisSet::stoNg(mol);
    IntegralTables ints = computeIntegrals(basis, mol);
    EXPECT_NEAR(ints.eriAt(0, 0, 0, 0), 0.7746, 0.01);
    // Coulomb > exchange-type magnitude ordering.
    EXPECT_GT(ints.eriAt(0, 0, 0, 0), ints.eriAt(0, 1, 0, 1));
}

TEST(Integrals, NuclearRepulsion)
{
    Molecule mol = benchmarkMolecule("H2").build(0.74);
    // 1/(0.74 * 1.8897...) Ha.
    EXPECT_NEAR(mol.nuclearRepulsion(),
                1.0 / (0.74 * angstromToBohr), 1e-10);
}

TEST(Integrals, BenchmarkBasisSizes)
{
    // AO counts that set up the Table I qubit arithmetic.
    struct Case
    {
        const char *name;
        size_t nbf;
    };
    for (const auto &c : std::vector<Case>{{"H2", 2},
                                           {"LiH", 6},
                                           {"NaH", 10},
                                           {"HF", 6},
                                           {"BeH2", 7},
                                           {"H2O", 7},
                                           {"BH3", 8},
                                           {"NH3", 8},
                                           {"CH4", 9}}) {
        const auto &entry = benchmarkMolecule(c.name);
        Molecule mol = entry.build(entry.equilibriumBond);
        BasisSet basis = BasisSet::stoNg(mol);
        EXPECT_EQ(basis.size(), c.nbf) << c.name;
    }
}
