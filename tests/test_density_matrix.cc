/**
 * @file
 * Unit tests for the density-matrix simulator and depolarizing noise
 * channels: agreement with the statevector simulator in the
 * noiseless limit, trace preservation, purity decay, and channel
 * fixed points.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "sim/density_matrix.hh"
#include "sim/simd.hh"
#include "sim/statevector.hh"

using namespace qcc;

namespace {

Circuit
smallCircuit(unsigned n)
{
    Circuit c(n);
    c.h(0);
    c.cnot(0, 1);
    c.rx(1, 0.37);
    c.rz(0, -0.81);
    if (n > 2) {
        c.cnot(1, 2);
        c.ry(2, 1.1);
    }
    return c;
}

} // namespace

TEST(DensityMatrix, PureStateMatchesStatevector)
{
    const unsigned n = 3;
    Circuit c = smallCircuit(n);

    Statevector sv(n);
    sv.applyCircuit(c);
    DensityMatrix rho(n);
    rho.applyCircuit(c, {});

    for (uint64_t r = 0; r < (1u << n); ++r)
        for (uint64_t k = 0; k < (1u << n); ++k)
            EXPECT_NEAR(std::abs(rho.element(r, k) -
                                 sv.amplitudes()[r] *
                                     std::conj(sv.amplitudes()[k])),
                        0.0, 1e-12);
}

TEST(DensityMatrix, ExpectationMatchesStatevector)
{
    const unsigned n = 3;
    Circuit c = smallCircuit(n);
    Statevector sv(n);
    sv.applyCircuit(c);
    DensityMatrix rho(n);
    rho.applyCircuit(c, {});

    PauliSum h(n);
    h.add(0.7, PauliString::fromString("XZY"));
    h.add(-0.2, PauliString::fromString("IZZ"));
    h.add(1.1, PauliString(n));
    EXPECT_NEAR(rho.expectation(h), sv.expectation(h), 1e-12);
}

TEST(DensityMatrix, TracePreservedUnderNoise)
{
    const unsigned n = 2;
    DensityMatrix rho(n);
    NoiseModel noise;
    noise.cnotDepolarizing = 0.05;
    Circuit c = smallCircuit(n);
    rho.applyCircuit(c, noise);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, DepolarizingReducesPurity)
{
    DensityMatrix rho(2);
    Circuit c(2);
    c.h(0);
    c.cnot(0, 1);
    rho.applyCircuit(c, {});
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    rho.depolarize2(0, 1, 0.1);
    EXPECT_LT(rho.purity(), 1.0);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, FullDepolarizationGivesMaximallyMixed)
{
    DensityMatrix rho(2, 0b11);
    // p = 15/16 is the channel's fixed-point-reaching value: the
    // output is I/4 for any input.
    rho.depolarize2(0, 1, 15.0 / 16.0);
    for (uint64_t r = 0; r < 4; ++r)
        for (uint64_t c = 0; c < 4; ++c)
            EXPECT_NEAR(std::abs(rho.element(r, c) -
                                 (r == c ? 0.25 : 0.0)),
                        0.0, 1e-12);
}

TEST(DensityMatrix, MaximallyMixedIsDepolarizingFixedPoint)
{
    DensityMatrix rho(2, 0);
    rho.depolarize2(0, 1, 15.0 / 16.0); // now I/4
    double before = rho.purity();
    rho.depolarize2(0, 1, 0.3);
    EXPECT_NEAR(rho.purity(), before, 1e-12);
}

TEST(DensityMatrix, SingleQubitDepolarizing)
{
    DensityMatrix rho(1, 1);
    rho.depolarize1(0, 0.75); // fully depolarizing for 1 qubit
    EXPECT_NEAR(std::abs(rho.element(0, 0) - 0.5), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(rho.element(1, 1) - 0.5), 0.0, 1e-12);
}

TEST(DensityMatrix, NoiseShiftsEnergyTowardZero)
{
    // For a traceless observable, depolarizing noise pulls the
    // expectation toward 0.
    DensityMatrix rho(2);
    Circuit c(2);
    c.h(0);
    c.cnot(0, 1);

    DensityMatrix clean(2), noisy(2);
    NoiseModel nm;
    nm.cnotDepolarizing = 0.2;
    clean.applyCircuit(c, {});
    noisy.applyCircuit(c, nm);

    PauliString xx = PauliString::fromString("XX");
    EXPECT_GT(clean.expectation(xx), noisy.expectation(xx));
    EXPECT_GT(noisy.expectation(xx), 0.0);
}

TEST(DensityMatrix, SwapCountsAsThreeCnotChannels)
{
    NoiseModel nm;
    nm.cnotDepolarizing = 0.05;

    Circuit viaSwap(2);
    viaSwap.swap(0, 1);
    Circuit viaCnots(2);
    viaCnots.cnot(0, 1);
    viaCnots.cnot(1, 0);
    viaCnots.cnot(0, 1);

    DensityMatrix a(2, 0b01), b(2, 0b01);
    a.applyCircuit(viaSwap, nm);
    b.applyCircuit(viaCnots, nm);
    EXPECT_NEAR(a.purity(), b.purity(), 1e-10);
}

namespace {

/** A non-trivial mixed state with structure on every qubit. */
DensityMatrix
mixedState(unsigned n)
{
    DensityMatrix rho(n);
    NoiseModel nm;
    nm.cnotDepolarizing = 0.03;
    nm.singleQubitDepolarizing = 0.01;
    Circuit c(n);
    for (unsigned q = 0; q < n; ++q)
        c.ry(q, 0.3 + 0.41 * q);
    for (unsigned q = 0; q + 1 < n; ++q)
        c.cnot(q, q + 1);
    for (unsigned q = 0; q < n; ++q)
        c.rz(q, -0.7 + 0.13 * q);
    rho.applyCircuit(c, nm);
    return rho;
}

} // namespace

TEST(DensityMatrix, DepolarizeSimdMatchesScalar)
{
    const bool simdWas = kern::simdActive();
    const unsigned n = 4;
    // Every qubit choice: q = 0 exercises the low-pivot scalar
    // fallback inside the AVX2 body, higher q the run-based path.
    for (unsigned q = 0; q < n; ++q) {
        DensityMatrix a = mixedState(n), b = a;
        kern::setSimdEnabled(false);
        a.depolarize1(q, 0.07);
        kern::setSimdEnabled(true);
        b.depolarize1(q, 0.07);
        const auto &va = a.vectorized(), &vb = b.vectorized();
        for (size_t i = 0; i < va.size(); ++i)
            ASSERT_NEAR(std::abs(va[i] - vb[i]), 0.0, 1e-12)
                << "q=" << q << " i=" << i;
        EXPECT_NEAR(b.trace(), 1.0, 1e-12);
    }
    for (unsigned qa = 0; qa < n; ++qa) {
        for (unsigned qb = 0; qb < n; ++qb) {
            if (qa == qb)
                continue;
            DensityMatrix a = mixedState(n), b = a;
            kern::setSimdEnabled(false);
            a.depolarize2(qa, qb, 0.05);
            kern::setSimdEnabled(true);
            b.depolarize2(qa, qb, 0.05);
            const auto &va = a.vectorized(), &vb = b.vectorized();
            for (size_t i = 0; i < va.size(); ++i)
                ASSERT_NEAR(std::abs(va[i] - vb[i]), 0.0, 1e-12)
                    << "qa=" << qa << " qb=" << qb << " i=" << i;
            EXPECT_NEAR(b.trace(), 1.0, 1e-12);
        }
    }
    kern::setSimdEnabled(simdWas);
}

TEST(DensityMatrix, DepolarizeRangePrimitivesMatchScalar)
{
    // Drive the range primitives directly so the equivalence holds
    // for arbitrary sub-ranges, not just whole-array sweeps.
    const unsigned n = 3;
    DensityMatrix seed = mixedState(n);
    const uint64_t kbit = 1ull << 2, bbit = kbit << n;
    auto va = seed.vectorized(), vb = va;
    const size_t pairs = va.size() / 4;
    kern::ranges::depolarize1Scalar(va.data(), 1, pairs - 1, kbit,
                                    bbit, 0.9, 0.05);
    kern::ranges::depolarize1(vb.data(), 1, pairs - 1, kbit, bbit,
                              0.9, 0.05);
    for (size_t i = 0; i < va.size(); ++i)
        ASSERT_NEAR(std::abs(va[i] - vb[i]), 0.0, 1e-12) << i;

    const uint64_t ka = 1ull << 1, kb2 = 1ull << 2;
    auto wa = seed.vectorized(), wb = wa;
    const size_t blocks = wa.size() / 16;
    kern::ranges::depolarize2Scalar(wa.data(), 1, blocks - 1, ka, kb2,
                                    ka << n, kb2 << n, 0.8, 0.05);
    kern::ranges::depolarize2(wb.data(), 1, blocks - 1, ka, kb2,
                              ka << n, kb2 << n, 0.8, 0.05);
    for (size_t i = 0; i < wa.size(); ++i)
        ASSERT_NEAR(std::abs(wa[i] - wb[i]), 0.0, 1e-12) << i;
}
