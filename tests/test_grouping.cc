/**
 * @file
 * Unit tests for measurement grouping: qubit-wise commutation,
 * cover/disjointness invariants of the greedy and sorted-insertion
 * strategies, shared-basis correctness, the reduction achieved on
 * real Hamiltonians, and the settings-count comparison between the
 * two registered strategies.
 */

#include <gtest/gtest.h>

#include "chem/molecules.hh"
#include "ferm/hamiltonian.hh"
#include "pauli/grouping.hh"

using namespace qcc;

namespace {

/** Cover-exactly-once + intra-family QWC + basis-covers-member. */
void
expectValidPartition(const PauliSum &h,
                     const std::vector<MeasurementGroup> &groups)
{
    std::vector<int> seen(h.numTerms(), 0);
    for (const auto &g : groups) {
        for (size_t i = 0; i < g.termIndices.size(); ++i) {
            ++seen[g.termIndices[i]];
            const PauliString &p =
                h.terms()[g.termIndices[i]].string;
            for (unsigned q = 0; q < p.numQubits(); ++q) {
                if (p.op(q) != PauliOp::I) {
                    EXPECT_EQ(p.op(q), g.basis.op(q));
                }
            }
            for (size_t j = i + 1; j < g.termIndices.size(); ++j)
                EXPECT_TRUE(qubitWiseCommute(
                    p, h.terms()[g.termIndices[j]].string));
        }
    }
    for (int s : seen)
        EXPECT_EQ(s, 1);
}

} // namespace

TEST(Grouping, QubitWiseCommutation)
{
    auto qwc = [](const char *a, const char *b) {
        return qubitWiseCommute(PauliString::fromString(a),
                                PauliString::fromString(b));
    };
    EXPECT_TRUE(qwc("XIZ", "XYZ"));  // equal-or-identity everywhere
    EXPECT_TRUE(qwc("III", "XYZ"));
    EXPECT_FALSE(qwc("XIZ", "ZIZ")); // X vs Z on one qubit
    // QWC is stronger than plain commutation: XX and YY commute but
    // are not qubit-wise commuting.
    PauliString xx = PauliString::fromString("XX");
    PauliString yy = PauliString::fromString("YY");
    EXPECT_TRUE(xx.commutesWith(yy));
    EXPECT_FALSE(qubitWiseCommute(xx, yy));
}

TEST(Grouping, CoversAllTermsExactlyOnce)
{
    MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("LiH"), 1.6);
    auto groups = groupQubitWise(prob.hamiltonian);

    std::vector<int> seen(prob.hamiltonian.numTerms(), 0);
    for (const auto &g : groups)
        for (size_t idx : g.termIndices)
            ++seen[idx];
    for (int s : seen)
        EXPECT_EQ(s, 1);
}

TEST(Grouping, MembersQwcWithinEachGroup)
{
    MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    auto groups = groupQubitWise(prob.hamiltonian);
    for (const auto &g : groups) {
        for (size_t i = 0; i < g.termIndices.size(); ++i) {
            for (size_t j = i + 1; j < g.termIndices.size(); ++j) {
                EXPECT_TRUE(qubitWiseCommute(
                    prob.hamiltonian.terms()[g.termIndices[i]]
                        .string,
                    prob.hamiltonian.terms()[g.termIndices[j]]
                        .string));
            }
        }
    }
}

TEST(Grouping, BasisCoversEveryMember)
{
    MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("H2"), 0.74);
    auto groups = groupQubitWise(prob.hamiltonian);
    for (const auto &g : groups) {
        for (size_t idx : g.termIndices) {
            const PauliString &p =
                prob.hamiltonian.terms()[idx].string;
            // Each member must be obtainable from the basis by
            // replacing some positions with I.
            for (unsigned q = 0; q < p.numQubits(); ++q) {
                if (p.op(q) != PauliOp::I) {
                    EXPECT_EQ(p.op(q), g.basis.op(q));
                }
            }
        }
    }
}

TEST(Grouping, ReducesSettingsOnRealHamiltonians)
{
    for (const char *name : {"H2", "LiH", "NaH"}) {
        const auto &entry = benchmarkMolecule(name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        auto groups = groupQubitWise(prob.hamiltonian);
        double reduction =
            groupingReduction(prob.hamiltonian, groups);
        EXPECT_LT(groups.size(), prob.hamiltonian.numTerms())
            << name;
        EXPECT_GT(reduction, 2.0) << name; // typically 3-5x for QWC
    }
}

TEST(Grouping, SingletonHamiltonian)
{
    PauliSum h(2);
    h.add(1.0, PauliString::fromString("XZ"));
    auto groups = groupQubitWise(h);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].basis.str(), "XZ");
}

TEST(Grouping, SortedInsertionIsValidPartition)
{
    for (const char *name : {"H2", "LiH"}) {
        const auto &entry = benchmarkMolecule(name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        expectValidPartition(prob.hamiltonian,
                             groupQubitWiseSorted(prob.hamiltonian));
    }
}

TEST(Grouping, GraphColoringIsValidPartition)
{
    for (const char *name : {"H2", "LiH"}) {
        const auto &entry = benchmarkMolecule(name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        expectValidPartition(
            prob.hamiltonian,
            groupQubitWiseColoring(prob.hamiltonian));
    }
}

TEST(Grouping, GraphColoringCutsSettingsVsBothInsertionOrders)
{
    // Settings-count comparison of the three registered strategies
    // on the Table I Hamiltonians. DSATUR's global conflict view
    // never needs more settings than either one-pass insertion
    // order here, and is strictly better than greedy on the larger
    // problems (measured: NaH 33 vs 34, HF 56 vs 59, BeH2 53 vs
    // 60 — and it beats sorted-insertion there too).
    size_t greedyTotal = 0, sortedTotal = 0, coloringTotal = 0;
    for (const char *name : {"H2", "LiH", "NaH", "HF", "BeH2"}) {
        const auto &entry = benchmarkMolecule(name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        const size_t greedy =
            groupQubitWise(prob.hamiltonian).size();
        const size_t sorted =
            groupQubitWiseSorted(prob.hamiltonian).size();
        const size_t coloring =
            groupQubitWiseColoring(prob.hamiltonian).size();
        greedyTotal += greedy;
        sortedTotal += sorted;
        coloringTotal += coloring;
        EXPECT_LE(coloring, greedy) << name;
        EXPECT_LE(coloring, sorted) << name;
        if (std::string(name) == "NaH" ||
            std::string(name) == "HF" ||
            std::string(name) == "BeH2") {
            EXPECT_LT(coloring, greedy) << name;
        }
    }
    EXPECT_LT(coloringTotal, greedyTotal);
    EXPECT_LT(coloringTotal, sortedTotal);
}

TEST(Grouping, SortedInsertionCutsSettingsOnLargerHamiltonians)
{
    // Settings-count comparison of the two registered strategies.
    // Weight-sorted insertion wins where it matters — the larger
    // Table I Hamiltonians — and stays within one setting of greedy
    // on the small ones, so the aggregate strictly improves.
    size_t greedyTotal = 0, sortedTotal = 0;
    for (const char *name : {"H2", "LiH", "NaH", "HF", "BeH2"}) {
        const auto &entry = benchmarkMolecule(name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        const size_t greedy =
            groupQubitWise(prob.hamiltonian).size();
        const size_t sorted =
            groupQubitWiseSorted(prob.hamiltonian).size();
        greedyTotal += greedy;
        sortedTotal += sorted;
        EXPECT_LE(sorted, greedy + 1) << name;
        if (std::string(name) == "HF" ||
            std::string(name) == "BeH2") {
            EXPECT_LT(sorted, greedy) << name;
        }
    }
    EXPECT_LT(sortedTotal, greedyTotal);
}
