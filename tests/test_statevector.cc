/**
 * @file
 * Unit tests for the statevector simulator: gate kernels against
 * known algebra, the direct Pauli-rotation kernel against its gate
 * decomposition, and expectation values.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "pauli/pauli_sum.hh"
#include "sim/statevector.hh"

using namespace qcc;

namespace {

Statevector
randomState(unsigned n, uint64_t seed)
{
    Rng rng(seed);
    Statevector sv(n);
    for (auto &a : sv.amplitudes())
        a = cplx(rng.gaussian(), rng.gaussian());
    sv.normalize();
    return sv;
}

} // namespace

TEST(Statevector, InitialBasisState)
{
    Statevector sv(3, 0b101);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0b101]), 1.0, 1e-14);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-14);
}

TEST(Statevector, XFlipsBit)
{
    Statevector sv(2);
    sv.applyGate({GateKind::X, 1});
    EXPECT_NEAR(std::abs(sv.amplitudes()[0b10]), 1.0, 1e-14);
}

TEST(Statevector, HadamardSuperposition)
{
    Statevector sv(1);
    sv.applyGate({GateKind::H, 0});
    EXPECT_NEAR(sv.amplitudes()[0].real(), 1 / std::sqrt(2), 1e-14);
    EXPECT_NEAR(sv.amplitudes()[1].real(), 1 / std::sqrt(2), 1e-14);
}

TEST(Statevector, CnotEntangles)
{
    Statevector sv(2);
    sv.applyGate({GateKind::H, 0});
    sv.applyGate({GateKind::CNOT, 0, 1});
    EXPECT_NEAR(std::abs(sv.amplitudes()[0b00]), 1 / std::sqrt(2),
                1e-14);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0b11]), 1 / std::sqrt(2),
                1e-14);
}

TEST(Statevector, SwapGate)
{
    Statevector sv(2, 0b01);
    sv.applyGate({GateKind::SWAP, 0, 1});
    EXPECT_NEAR(std::abs(sv.amplitudes()[0b10]), 1.0, 1e-14);
}

TEST(Statevector, PauliApplyMatchesDefinition)
{
    // Y|0> = i|1>, Y|1> = -i|0>.
    Statevector sv(1, 0);
    sv.applyPauli(PauliString::fromString("Y"));
    EXPECT_NEAR(std::abs(sv.amplitudes()[1] - cplx(0, 1)), 0.0, 1e-14);
}

TEST(Statevector, PauliRotationMatchesGateDecomposition)
{
    // exp(i t P) == basis+CNOT-chain circuit, on random states.
    const std::vector<std::string> strings = {"ZZ", "XIYZ", "YXY",
                                              "XYZI", "ZIIZ", "Y"};
    for (const auto &s : strings) {
        PauliString p = PauliString::fromString(s);
        const unsigned n = p.numQubits();
        const double theta = 0.731;

        Statevector a = randomState(n, 42 + n);
        Statevector b = a;

        a.applyPauliRotation(theta, p);

        // Decomposition: V+ RZ(-2t) V with H / RX basis changes.
        Circuit c(n);
        auto sup = p.support();
        for (unsigned q : sup) {
            if (p.op(q) == PauliOp::X)
                c.h(q);
            else if (p.op(q) == PauliOp::Y)
                c.rx(q, M_PI / 2);
        }
        for (size_t i = 0; i + 1 < sup.size(); ++i)
            c.cnot(sup[i], sup[i + 1]);
        c.rz(sup.back(), -2 * theta);
        for (size_t i = sup.size() - 1; i-- > 0;)
            c.cnot(sup[i], sup[i + 1]);
        for (unsigned q : sup) {
            if (p.op(q) == PauliOp::X)
                c.h(q);
            else if (p.op(q) == PauliOp::Y)
                c.rx(q, -M_PI / 2);
        }
        b.applyCircuit(c);

        for (size_t i = 0; i < a.dim(); ++i)
            EXPECT_NEAR(std::abs(a.amplitudes()[i] -
                                 b.amplitudes()[i]),
                        0.0, 1e-12)
                << "string " << s;
    }
}

TEST(Statevector, RotationIdentityString)
{
    // exp(i t I) is a global phase e^{it}.
    Statevector sv = randomState(2, 9);
    Statevector orig = sv;
    sv.applyPauliRotation(0.4, PauliString(2));
    cplx ratio = sv.amplitudes()[1] / orig.amplitudes()[1];
    EXPECT_NEAR(std::abs(ratio - std::exp(cplx(0, 0.4))), 0.0, 1e-12);
}

TEST(Statevector, RotationPreservesNorm)
{
    Statevector sv = randomState(4, 17);
    sv.applyPauliRotation(1.234, PauliString::fromString("XZYX"));
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, ExpectationOfStabilizer)
{
    // |00> + |11>: <XX> = 1, <ZZ> = 1, <ZI> = 0.
    Statevector sv(2);
    sv.applyGate({GateKind::H, 0});
    sv.applyGate({GateKind::CNOT, 0, 1});
    EXPECT_NEAR(sv.expectation(PauliString::fromString("XX")), 1.0,
                1e-12);
    EXPECT_NEAR(sv.expectation(PauliString::fromString("ZZ")), 1.0,
                1e-12);
    EXPECT_NEAR(sv.expectation(PauliString::fromString("ZI")), 0.0,
                1e-12);
}

TEST(Statevector, ExpectationZSign)
{
    // Our convention: qubit |1> has <Z> = -1.
    Statevector sv(1, 1);
    EXPECT_NEAR(sv.expectation(PauliString::fromString("Z")), -1.0,
                1e-14);
}

TEST(Statevector, SumExpectationMatchesTermSum)
{
    Statevector sv = randomState(3, 23);
    PauliSum h(3);
    h.add(0.5, PauliString::fromString("XYZ"));
    h.add(-1.25, PauliString::fromString("ZZI"));
    h.add(0.75, PauliString(3));

    double direct = sv.expectation(h);
    double bySum = 0.5 * sv.expectation(PauliString::fromString("XYZ"))
        - 1.25 * sv.expectation(PauliString::fromString("ZZI"))
        + 0.75;
    EXPECT_NEAR(direct, bySum, 1e-12);
}

TEST(Statevector, CircuitUnitaryIsUnitary)
{
    Circuit c(2);
    c.h(0);
    c.cnot(0, 1);
    c.rz(1, 0.3);
    auto u = circuitUnitary(c);
    // U U+ = I.
    for (size_t i = 0; i < 4; ++i) {
        for (size_t j = 0; j < 4; ++j) {
            cplx s = 0;
            for (size_t k = 0; k < 4; ++k)
                s += u[i][k] * std::conj(u[j][k]);
            EXPECT_NEAR(std::abs(s - (i == j ? 1.0 : 0.0)), 0.0,
                        1e-12);
        }
    }
}
