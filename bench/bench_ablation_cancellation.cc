/**
 * @file
 * Ablation (Section VII, "deeper compiler optimization"): how many
 * gates does the peephole cancellation pass recover on top of chain
 * synthesis and on top of Merge-to-Root output? Consecutive Pauli
 * simulation circuits share basis/CNOT structure, so the mirrored
 * suffix of one string often cancels the prefix of the next.
 */

#include <cstdio>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "bench_util.hh"
#include "chem/molecules.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/merge_to_root.hh"
#include "compiler/peephole.hh"
#include "ferm/hamiltonian.hh"

using namespace qcc;
using namespace qccbench;

int
main()
{
    setVerbose(false);
    banner("Ablation: peephole gate cancellation on top of "
           "synthesis (50% compressed ansatz)");

    std::vector<std::string> molecules =
        fullMode()
            ? std::vector<std::string>{"H2", "LiH", "NaH", "HF",
                                       "BeH2", "H2O", "BH3"}
            : std::vector<std::string>{"H2", "LiH", "NaH", "HF"};

    XTree tree = makeXTree(17);
    std::printf("%-6s %14s %14s %16s %16s\n", "Mol", "chain gates",
                "after cancel", "MtR gates", "after cancel");
    rule();

    for (const auto &name : molecules) {
        const auto &entry = benchmarkMolecule(name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
        CompressedAnsatz comp =
            compressAnsatz(full, prob.hamiltonian, 0.5);
        std::vector<double> params(comp.ansatz.nParams, 0.1);

        Circuit chain =
            synthesizeChainCircuit(comp.ansatz, params, true);
        Circuit chainOpt = cancelGates(chain);

        MtrResult mtr =
            mergeToRootCompile(comp.ansatz, params, tree);
        Circuit mtrOpt = cancelGates(mtr.circuit);

        std::printf("%-6s %14zu %10zu (-%2.0f%%) %12zu "
                    "%10zu (-%2.0f%%)\n",
                    name.c_str(), chain.totalGates(),
                    chainOpt.totalGates(),
                    100.0 * double(chain.totalGates() -
                                   chainOpt.totalGates()) /
                        double(chain.totalGates()),
                    mtr.circuit.totalGates(), mtrOpt.totalGates(),
                    100.0 * double(mtr.circuit.totalGates() -
                                   mtrOpt.totalGates()) /
                        double(mtr.circuit.totalGates()));
    }
    rule();
    std::printf("cancellation is unitary-exact (verified in "
                "tests/test_peephole.cc) and composes with both "
                "flows.\n");
    return 0;
}
