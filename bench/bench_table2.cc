/**
 * @file
 * Table II reproduction: mapping overhead (additional CNOTs; one
 * SWAP = 3 CNOTs) of the compressed-UCCSD benchmarks under three
 * compilation flows:
 *   - MtR on XTree17Q: hierarchical initial layout + Merge-to-Root
 *   - SAB on XTree17Q: chain synthesis + SABRE routing
 *   - SAB on Grid17Q:  chain synthesis + SABRE on the dense grid
 * plus the "Original # of CNOTs" of the compressed chain circuits.
 * Quick mode covers molecules up to H2O; QCC_FULL=1 runs all nine.
 */

#include <cstdio>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "api/experiment.hh"
#include "bench_util.hh"
#include "chem/molecules.hh"
#include "ferm/hamiltonian.hh"

using namespace qcc;
using namespace qccbench;

namespace {

const std::vector<double> ratios = {0.1, 0.3, 0.5, 0.7, 0.9};

struct Row
{
    std::string name;
    std::vector<size_t> original, mtr, sabTree, sabGrid;
};

} // namespace

int
main()
{
    setVerbose(false);
    banner("Table II: mapping overhead of MtR vs SABRE "
           "(additional CNOTs; SWAP = 3 CNOTs)");

    const size_t maxMolecules = fullMode() ? 9 : 6;
    Device tree = makeDevice("xtree17");
    Device grid = makeDevice("grid17");

    // All three flows run through registry presets on the
    // pass-manager pipeline; the MtR flow's verify pass enforces the
    // coupling constraint (a violation aborts with the offending
    // pass and gate index).
    const auto &presets = pipelinePresetRegistry();
    CompilerPipeline chainPipe(presets.get("chain")());
    CompilerPipeline mtrPipe(*tree.tree, presets.get("mtr")());
    CompilerPipeline sabTreePipe(*tree.tree, presets.get("sabre")());
    CompilerPipeline sabGridPipe(*grid.graph,
                                 presets.get("sabre")());

    std::vector<Row> rows;
    double sumMtr = 0, sumSabTree = 0, sumOrig = 0, sumSabGrid = 0;

    for (const auto &entry : benchmarkMolecules()) {
        if (rows.size() >= maxMolecules)
            break;
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);

        Row row;
        row.name = entry.name;
        for (double ratio : ratios) {
            CompressedAnsatz comp =
                compressAnsatz(full, prob.hamiltonian, ratio);
            std::vector<double> zeros(comp.ansatz.nParams, 0.0);

            CompileResult chain =
                chainPipe.compile(comp.ansatz, zeros);
            row.original.push_back(chain.circuit.cnotCount());

            CompileResult mtr = mtrPipe.compile(comp.ansatz, zeros);
            row.mtr.push_back(mtr.overheadCnots());

            CompileResult st =
                sabTreePipe.compile(comp.ansatz, zeros);
            row.sabTree.push_back(st.overheadCnots());

            CompileResult sg =
                sabGridPipe.compile(comp.ansatz, zeros);
            row.sabGrid.push_back(sg.overheadCnots());

            sumOrig += double(chain.circuit.cnotCount());
            sumMtr += double(mtr.overheadCnots());
            sumSabTree += double(st.overheadCnots());
            sumSabGrid += double(sg.overheadCnots());
        }
        rows.push_back(row);
        std::printf("  ... %s done\n", entry.name.c_str());
    }

    auto printBlock = [&](const char *title,
                          std::vector<size_t> Row::*field) {
        rule();
        std::printf("%s\n", title);
        std::printf("%-6s", "Ratio");
        for (double r : ratios)
            std::printf("%10.0f%%", 100 * r);
        std::printf("\n");
        for (const auto &row : rows) {
            std::printf("%-6s", row.name.c_str());
            for (size_t v : row.*field)
                std::printf("%11zu", v);
            std::printf("\n");
        }
    };

    printBlock("Original # of CNOTs (compressed chain circuits)",
               &Row::original);
    printBlock("MtR on XTree17Q (additional CNOTs)", &Row::mtr);
    printBlock("SAB on XTree17Q (additional CNOTs)", &Row::sabTree);
    printBlock("SAB on Grid17Q (additional CNOTs)", &Row::sabGrid);

    rule('=');
    std::printf("aggregate: MtR overhead / original CNOTs      = "
                "%5.2f%%   (paper: ~1.4%%)\n",
                100.0 * sumMtr / sumOrig);
    std::printf("aggregate: SAB/XTree overhead / original      = "
                "%5.1f%%   (paper: ~177%%)\n",
                100.0 * sumSabTree / sumOrig);
    std::printf("aggregate: MtR overhead / SAB-XTree overhead  = "
                "%5.2f%%   (paper: ~1%%, i.e. 99%%+ reduction)\n",
                100.0 * sumMtr / sumSabTree);
    std::printf("aggregate: MtR overhead / SAB-Grid overhead   = "
                "%5.2f%%   (paper: ~2.3%%)\n",
                100.0 * sumMtr / sumSabGrid);
    std::printf("CI rows: quick mode stops after H2O; BH3/NH3/CH4 "
                "need QCC_FULL=1. The molecule x compression\n"
                "sweep also ships as examples/specs/table2_full.json "
                "for qcc_sweep.\n");
    return 0;
}
