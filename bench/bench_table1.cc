/**
 * @file
 * Table I reproduction: benchmark molecules and their original full
 * UCCSD cost — qubit count, Pauli string count, parameter count, and
 * chain-synthesized gate/CNOT counts. Runs the real chemistry
 * pipeline (STO-3G -> RHF -> active space) for the qubit counts and
 * the real UCCSD generator for the circuit costs; synthesis goes
 * through the PipelinePresetRegistry's "chain" preset, whose
 * per-term fan-out makes the big programs (CH4: 66k gates) compile
 * in parallel.
 */

#include <cstdio>

#include "ansatz/uccsd.hh"
#include "api/registries.hh"
#include "bench_util.hh"
#include "chem/molecules.hh"
#include "ferm/hamiltonian.hh"

using namespace qcc;
using namespace qccbench;

int
main()
{
    setVerbose(false);
    banner("Table I: benchmark molecules and their original cost");

    std::printf("%-6s %9s %10s %10s %18s %10s\n", "Mol", "# Qubits",
                "# Pauli", "# Param", "# Gates (CNOTs)",
                "compile");
    rule();

    CompilerPipeline pipe(pipelinePresetRegistry().get("chain")());

    for (const auto &entry : benchmarkMolecules()) {
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        Ansatz a = buildUccsd(prob.nSpatial, prob.nElectrons);
        std::vector<double> zeros(a.nParams, 0.0);
        CompileResult r = pipe.compile(a, zeros);
        std::printf("%-6s %9u %10zu %10u %11zu (%zu) %8.1fms\n",
                    entry.name.c_str(), prob.nQubits, a.numStrings(),
                    a.nParams, r.circuit.totalGates(),
                    r.circuit.cnotCount(), r.report.totalMillis);
    }
    rule();
    std::printf("paper reference rows: H2 4/12/3/150(56), "
                "LiH 6/40/8/610(280), NaH 8/84/15/1476(768),\n"
                "HF 10/144/24/2856(1616), BeH2 12/640/92/13704"
                "(8064), H2O 12/640/92/13704(8064),\n"
                "BH3 14/1488/204/34280(21072), NH3 14/1488/204/"
                "34280(21072), CH4 16/2688/360/66312(42368)\n");
    std::printf("CI runs every row (compile cost only); the full "
                "VQE study over all nine molecules ships as\n"
                "examples/specs/table1_full.json for qcc_sweep "
                "(BH3/NH3/CH4 rows are minutes, not CI-budget).\n");
    return 0;
}
