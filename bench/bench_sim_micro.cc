/**
 * @file
 * Simulator-kernel microbenchmarks. Two parts:
 *
 *  - google-benchmark timings of the individual primitives (the
 *    specialized stride-based Pauli-rotation kernel vs the generic
 *    full-scan path and vs the equivalent basis+CNOT-chain gate
 *    circuit, plus Hamiltonian expectation evaluation);
 *
 *  - a variant report comparing the four execution tiers on a
 *    VQE-representative layered circuit and on the hot kernels:
 *    scalar (naive full-scan replay), kernel (stride kernels, vector
 *    path off — the pre-SIMD production path), simd (stride kernels
 *    + AVX2), fused (gate fusion + cache-blocked execution + AVX2).
 *    The variant rows are what lands in BENCH_sim.json (QCC_JSON=1);
 *    `fused_vs_kernel` at n >= 14 is the headline speedup. Pass
 *    --benchmark_filter=nope to skip the google-benchmark section and
 *    emit only the variant report.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "compiler/chain_synthesis.hh"
#include "ferm/hamiltonian.hh"
#include "sim/fusion.hh"
#include "sim/kernels.hh"
#include "sim/simd.hh"
#include "sim/statevector.hh"
#include "vqe/expectation_engine.hh"

using namespace qcc;

namespace {

PauliString
denseString(unsigned n)
{
    PauliString p(n);
    for (unsigned q = 0; q < n; ++q)
        p.setOp(q, q % 2 ? PauliOp::X : PauliOp::Z);
    return p;
}

void
benchKernelRotation(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Statevector sv(n);
    for (auto _ : state) {
        sv.applyPauliRotation(0.1, p);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchGenericRotation(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Statevector sv(n);
    for (auto _ : state) {
        kern::applyPauliRotationGeneric(sv.amplitudes().data(),
                                        sv.dim(), p.xMask(),
                                        p.zMask(), 0.1);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchGateDecomposition(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Circuit c = pauliRotationChain(p, 0.1, n);
    Statevector sv(n);
    for (auto _ : state) {
        sv.applyCircuit(c);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchKernelExpectation(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Statevector sv(n);
    for (auto _ : state) {
        double e = sv.expectation(p);
        benchmark::DoNotOptimize(e);
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchGenericExpectation(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Statevector sv(n);
    for (auto _ : state) {
        double e = kern::expectationGeneric(sv.amplitudes().data(),
                                            sv.dim(), p.xMask(),
                                            p.zMask());
        benchmark::DoNotOptimize(e);
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchLiHEnergyTermwise(benchmark::State &state)
{
    setVerbose(false);
    static MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("LiH"), 1.6);
    Statevector sv(prob.nQubits, 0b001001);
    for (auto _ : state) {
        double e = sv.expectation(prob.hamiltonian);
        benchmark::DoNotOptimize(e);
    }
    state.counters["terms"] = double(prob.hamiltonian.numTerms());
}

void
benchLiHEnergyGrouped(benchmark::State &state)
{
    setVerbose(false);
    static MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("LiH"), 1.6);
    static ExpectationEngine engine(prob.hamiltonian);
    Statevector sv(prob.nQubits, 0b001001);
    for (auto _ : state) {
        double e = engine.energy(sv);
        benchmark::DoNotOptimize(e);
    }
    state.counters["terms"] = double(prob.hamiltonian.numTerms());
    state.counters["groups"] = double(engine.numGroups());
}

// ---------------------------------------------------------------------
// Variant report: scalar / kernel / simd / fused on shared workloads.
// ---------------------------------------------------------------------

/**
 * VQE-shaped layered circuit: per layer an Euler rotation block
 * RZ-RY-RZ on every qubit, a CNOT entangling chain, and a diagonal
 * tail (S, RZ) — the gate mix chain synthesis emits. Exercises 1q
 * merging, diagonal coalescing, and blocked CNOT execution at once.
 */
Circuit
layeredCircuit(unsigned n, unsigned layers)
{
    Circuit c(n);
    double a = 0.3;
    for (unsigned l = 0; l < layers; ++l) {
        for (unsigned q = 0; q < n; ++q) {
            c.rz(q, a);
            c.ry(q, a * 0.7 + 0.1);
            c.rz(q, -a * 0.4);
            a += 0.05;
        }
        for (unsigned q = 0; q + 1 < n; ++q)
            c.cnot(q, q + 1);
        for (unsigned q = 0; q < n; ++q) {
            c.s(q);
            c.rz(q, 0.1 + 0.01 * q);
        }
    }
    return c;
}

/** Median-of-batches wall time per call, in milliseconds. */
double
timeMs(const std::function<void()> &fn)
{
    using clock = std::chrono::steady_clock;
    fn(); // warm up (page in the state, settle dispatch)
    auto once = clock::now();
    fn();
    double t1 =
        std::chrono::duration<double>(clock::now() - once).count();
    // Size batches so each takes ~40 ms, then keep the fastest of
    // three (robust against scheduler noise on shared runners).
    const int reps =
        int(std::clamp(0.04 / std::max(t1, 1e-7), 1.0, 2000.0));
    double best = 1e300;
    for (int b = 0; b < 3; ++b) {
        auto t0 = clock::now();
        for (int r = 0; r < reps; ++r)
            fn();
        double dt =
            std::chrono::duration<double>(clock::now() - t0).count();
        best = std::min(best, dt / reps);
    }
    return best * 1e3;
}

/** Naive full-scan gate replay: the scalar reference tier. */
void
applyCircuitNaive(Statevector &sv, const Circuit &c)
{
    cplx *amp = sv.amplitudes().data();
    const size_t dim = sv.dim();
    for (const Gate &g : c.gates()) {
        if (g.kind == GateKind::CNOT) {
            const uint64_t cb = 1ull << g.q0, tb = 1ull << g.q1;
            for (size_t b = 0; b < dim; ++b)
                if ((b & cb) && !(b & tb))
                    std::swap(amp[b], amp[b | tb]);
        } else if (g.kind == GateKind::SWAP) {
            const uint64_t ab = 1ull << g.q0, bb = 1ull << g.q1;
            for (size_t b = 0; b < dim; ++b)
                if ((b & ab) && !(b & bb))
                    std::swap(amp[b ^ ab], amp[b ^ ab ^ (ab | bb)]);
        } else {
            cplx u[4];
            gateMatrix(g.kind, g.angle, u);
            kern::apply1qGeneric(amp, dim, g.q0, u);
        }
    }
}

void
variantCircuitRow(qccbench::JsonReport &rep, unsigned n)
{
    const Circuit c = layeredCircuit(n, 3);
    const size_t fusedOps = fuseCircuit(c).ops.size();
    Statevector sv(n);

    kern::setSimdEnabled(false);
    const double scalarMs =
        timeMs([&] { applyCircuitNaive(sv, c); });
    const double kernelMs =
        timeMs([&] { sv.applyCircuit(c, false); });
    const double fusedScalarMs =
        timeMs([&] { sv.applyCircuit(c, true); });
    kern::setSimdEnabled(true);
    const double simdMs =
        timeMs([&] { sv.applyCircuit(c, false); });
    const double fusedMs =
        timeMs([&] { sv.applyCircuit(c, true); });

    std::printf("  circuit n=%-2u (%zu gates -> %zu fused ops): "
                "scalar %.3f  kernel %.3f  simd %.3f  fused %.3f ms"
                "  [fused_vs_kernel %.2fx]\n",
                n, c.size(), fusedOps, scalarMs, kernelMs, simdMs,
                fusedMs, kernelMs / fusedMs);
    rep.row("circuit_n" + std::to_string(n),
            {{"qubits", double(n)},
             {"gates", double(c.size())},
             {"fused_ops", double(fusedOps)},
             {"scalar_ms", scalarMs},
             {"kernel_ms", kernelMs},
             {"simd_ms", simdMs},
             {"fused_scalar_ms", fusedScalarMs},
             {"fused_ms", fusedMs},
             {"simd_vs_kernel", kernelMs / simdMs},
             {"fused_vs_kernel", kernelMs / fusedMs}});
}

void
variantRotationRow(qccbench::JsonReport &rep, unsigned n)
{
    PauliString p = denseString(n);
    Statevector sv(n);
    const double scalarMs = timeMs([&] {
        kern::applyPauliRotationGeneric(sv.amplitudes().data(),
                                        sv.dim(), p.xMask(),
                                        p.zMask(), 0.1);
    });
    kern::setSimdEnabled(false);
    const double kernelMs =
        timeMs([&] { sv.applyPauliRotation(0.1, p); });
    kern::setSimdEnabled(true);
    const double simdMs =
        timeMs([&] { sv.applyPauliRotation(0.1, p); });
    std::printf("  rotation n=%-2u: scalar %.3f  kernel %.3f  "
                "simd %.3f ms  [simd_vs_kernel %.2fx]\n",
                n, scalarMs, kernelMs, simdMs, kernelMs / simdMs);
    rep.row("rotation_n" + std::to_string(n),
            {{"qubits", double(n)},
             {"scalar_ms", scalarMs},
             {"kernel_ms", kernelMs},
             {"simd_ms", simdMs},
             {"simd_vs_kernel", kernelMs / simdMs}});
}

void
variantExpectationRow(qccbench::JsonReport &rep, unsigned n)
{
    PauliString p = denseString(n);
    Statevector sv(n);
    const double scalarMs = timeMs([&] {
        double e = kern::expectationGeneric(sv.amplitudes().data(),
                                            sv.dim(), p.xMask(),
                                            p.zMask());
        benchmark::DoNotOptimize(e);
    });
    kern::setSimdEnabled(false);
    const double kernelMs = timeMs([&] {
        double e = sv.expectation(p);
        benchmark::DoNotOptimize(e);
    });
    kern::setSimdEnabled(true);
    const double simdMs = timeMs([&] {
        double e = sv.expectation(p);
        benchmark::DoNotOptimize(e);
    });
    std::printf("  expectation n=%-2u: scalar %.3f  kernel %.3f  "
                "simd %.3f ms  [simd_vs_kernel %.2fx]\n",
                n, scalarMs, kernelMs, simdMs, kernelMs / simdMs);
    rep.row("expectation_n" + std::to_string(n),
            {{"qubits", double(n)},
             {"scalar_ms", scalarMs},
             {"kernel_ms", kernelMs},
             {"simd_ms", simdMs},
             {"simd_vs_kernel", kernelMs / simdMs}});
}

void
variantGroupRow(qccbench::JsonReport &rep, unsigned n)
{
    // A 24-term diagonal family with varied masks, like a rotated
    // qubit-wise-commuting group after basis change.
    std::vector<double> w;
    std::vector<uint64_t> z;
    uint64_t m = 0x9e3779b97f4a7c15ull;
    for (int t = 0; t < 24; ++t) {
        w.push_back(0.01 * (t + 1));
        z.push_back(m & ((1ull << n) - 1));
        m = m * 6364136223846793005ull + 1442695040888963407ull;
    }
    Statevector sv(n);
    kern::setSimdEnabled(false);
    const double kernelMs = timeMs([&] {
        double e = kern::diagonalGroupExpectation(
            sv.amplitudes().data(), sv.dim(), w.data(), z.data(),
            z.size());
        benchmark::DoNotOptimize(e);
    });
    kern::setSimdEnabled(true);
    const double simdMs = timeMs([&] {
        double e = kern::diagonalGroupExpectation(
            sv.amplitudes().data(), sv.dim(), w.data(), z.data(),
            z.size());
        benchmark::DoNotOptimize(e);
    });
    std::printf("  group(24) n=%-2u: kernel %.3f  simd %.3f ms  "
                "[simd_vs_kernel %.2fx]\n",
                n, kernelMs, simdMs, kernelMs / simdMs);
    rep.row("group_n" + std::to_string(n),
            {{"qubits", double(n)},
             {"terms", 24.0},
             {"kernel_ms", kernelMs},
             {"simd_ms", simdMs},
             {"simd_vs_kernel", kernelMs / simdMs}});
}

void
variantReport()
{
    const bool simdWasActive = kern::simdActive();
    qccbench::banner("sim kernel variants (scalar / kernel / simd / "
                     "fused)");
    std::printf("  simd: compiled=%d supported=%d (%s)\n",
                int(kern::simdCompiled()), int(kern::simdSupported()),
                kern::simdName());

    qccbench::JsonReport rep("sim");
    std::vector<unsigned> sizes = {10, 14};
    if (qccbench::fullMode()) {
        sizes.push_back(16);
        sizes.push_back(18);
    }
    for (unsigned n : sizes)
        variantCircuitRow(rep, n);
    for (unsigned n : sizes)
        variantRotationRow(rep, n);
    for (unsigned n : sizes)
        variantExpectationRow(rep, n);
    variantGroupRow(rep, sizes.back());

    kern::setSimdEnabled(simdWasActive);
    qccbench::rule();
}

} // namespace

BENCHMARK(benchKernelRotation)->DenseRange(8, 20, 4);
BENCHMARK(benchGenericRotation)->DenseRange(8, 20, 4);
BENCHMARK(benchGateDecomposition)->DenseRange(8, 16, 4);
BENCHMARK(benchKernelExpectation)->DenseRange(12, 20, 4);
BENCHMARK(benchGenericExpectation)->DenseRange(12, 20, 4);
BENCHMARK(benchLiHEnergyTermwise);
BENCHMARK(benchLiHEnergyGrouped);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    variantReport();
    return 0;
}
