/**
 * @file
 * Simulator-kernel microbenchmarks (google-benchmark): the direct
 * O(2^n) Pauli-rotation kernel vs executing the equivalent
 * basis+CNOT-chain gate circuit, plus Hamiltonian expectation
 * evaluation — the primitives dominating VQE wall time.
 */

#include <benchmark/benchmark.h>

#include "chem/molecules.hh"
#include "common/logging.hh"
#include "compiler/chain_synthesis.hh"
#include "ferm/hamiltonian.hh"
#include "sim/statevector.hh"

using namespace qcc;

namespace {

PauliString
denseString(unsigned n)
{
    PauliString p(n);
    for (unsigned q = 0; q < n; ++q)
        p.setOp(q, q % 2 ? PauliOp::X : PauliOp::Z);
    return p;
}

void
benchDirectRotation(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Statevector sv(n);
    for (auto _ : state) {
        sv.applyPauliRotation(0.1, p);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchGateDecomposition(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Circuit c = pauliRotationChain(p, 0.1, n);
    Statevector sv(n);
    for (auto _ : state) {
        sv.applyCircuit(c);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchLiHEnergy(benchmark::State &state)
{
    setVerbose(false);
    static MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("LiH"), 1.6);
    Statevector sv(prob.nQubits, 0b001001);
    for (auto _ : state) {
        double e = sv.expectation(prob.hamiltonian);
        benchmark::DoNotOptimize(e);
    }
    state.counters["terms"] = double(prob.hamiltonian.numTerms());
}

} // namespace

BENCHMARK(benchDirectRotation)->DenseRange(8, 16, 4);
BENCHMARK(benchGateDecomposition)->DenseRange(8, 16, 4);
BENCHMARK(benchLiHEnergy);

BENCHMARK_MAIN();
