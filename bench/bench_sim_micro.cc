/**
 * @file
 * Simulator-kernel microbenchmarks (google-benchmark): the
 * specialized stride-based Pauli-rotation kernel vs the generic
 * full-scan path it replaced and vs the equivalent basis+CNOT-chain
 * gate circuit, plus Hamiltonian expectation evaluation (termwise
 * kernels and the grouped ExpectationEngine) — the primitives
 * dominating VQE wall time. The kernel-vs-generic pairs at >= 20
 * qubits are the PR's headline speedup numbers.
 */

#include <benchmark/benchmark.h>

#include "chem/molecules.hh"
#include "common/logging.hh"
#include "compiler/chain_synthesis.hh"
#include "ferm/hamiltonian.hh"
#include "sim/kernels.hh"
#include "sim/statevector.hh"
#include "vqe/expectation_engine.hh"

using namespace qcc;

namespace {

PauliString
denseString(unsigned n)
{
    PauliString p(n);
    for (unsigned q = 0; q < n; ++q)
        p.setOp(q, q % 2 ? PauliOp::X : PauliOp::Z);
    return p;
}

void
benchKernelRotation(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Statevector sv(n);
    for (auto _ : state) {
        sv.applyPauliRotation(0.1, p);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchGenericRotation(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Statevector sv(n);
    for (auto _ : state) {
        kern::applyPauliRotationGeneric(sv.amplitudes().data(),
                                        sv.dim(), p.xMask(),
                                        p.zMask(), 0.1);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchGateDecomposition(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Circuit c = pauliRotationChain(p, 0.1, n);
    Statevector sv(n);
    for (auto _ : state) {
        sv.applyCircuit(c);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchKernelExpectation(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Statevector sv(n);
    for (auto _ : state) {
        double e = sv.expectation(p);
        benchmark::DoNotOptimize(e);
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchGenericExpectation(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    PauliString p = denseString(n);
    Statevector sv(n);
    for (auto _ : state) {
        double e = kern::expectationGeneric(sv.amplitudes().data(),
                                            sv.dim(), p.xMask(),
                                            p.zMask());
        benchmark::DoNotOptimize(e);
    }
    state.SetComplexityN(int64_t(1) << n);
}

void
benchLiHEnergyTermwise(benchmark::State &state)
{
    setVerbose(false);
    static MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("LiH"), 1.6);
    Statevector sv(prob.nQubits, 0b001001);
    for (auto _ : state) {
        double e = sv.expectation(prob.hamiltonian);
        benchmark::DoNotOptimize(e);
    }
    state.counters["terms"] = double(prob.hamiltonian.numTerms());
}

void
benchLiHEnergyGrouped(benchmark::State &state)
{
    setVerbose(false);
    static MolecularProblem prob =
        buildMolecularProblem(benchmarkMolecule("LiH"), 1.6);
    static ExpectationEngine engine(prob.hamiltonian);
    Statevector sv(prob.nQubits, 0b001001);
    for (auto _ : state) {
        double e = engine.energy(sv);
        benchmark::DoNotOptimize(e);
    }
    state.counters["terms"] = double(prob.hamiltonian.numTerms());
    state.counters["groups"] = double(engine.numGroups());
}

} // namespace

BENCHMARK(benchKernelRotation)->DenseRange(8, 20, 4);
BENCHMARK(benchGenericRotation)->DenseRange(8, 20, 4);
BENCHMARK(benchGateDecomposition)->DenseRange(8, 16, 4);
BENCHMARK(benchKernelExpectation)->DenseRange(12, 20, 4);
BENCHMARK(benchGenericExpectation)->DenseRange(12, 20, 4);
BENCHMARK(benchLiHEnergyTermwise);
BENCHMARK(benchLiHEnergyGrouped);

BENCHMARK_MAIN();
