/**
 * @file
 * Figure 10 reproduction: noisy VQE case studies on LiH and NaH
 * with a depolarizing error model (CNOT error rate 1e-4). The
 * ansatz circuits are chain-synthesized through the compiler
 * pipeline's cached path and executed on the density-matrix
 * simulator: every noisy energy evaluation after the first for a
 * given ansatz rebinds angles on the memoized circuit structure
 * instead of re-synthesizing it.
 *
 * Quick mode optimizes parameters on the noise-free objective and
 * evaluates them once under noise (minutes); QCC_FULL=1 optimizes
 * directly on the noisy objective with SPSA over denser bond grids,
 * which is the paper's actual protocol and costs CPU-hours.
 */

#include <cstdio>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "bench_util.hh"
#include "chem/molecules.hh"
#include "compiler/cache.hh"
#include "ferm/hamiltonian.hh"
#include "sim/lanczos.hh"
#include "vqe/vqe.hh"

using namespace qcc;
using namespace qccbench;

int
main()
{
    setVerbose(false);
    banner("Figure 10: noisy VQE case studies (LiH, NaH), "
           "CNOT depolarizing error 1e-4");
    if (!fullMode())
        std::printf("quick mode: noisy evaluation at the noise-free "
                    "optimum (QCC_FULL=1 for noisy SPSA)\n");

    const std::vector<double> ratios = {0.1, 0.3, 0.5, 0.7, 0.9};
    NoiseModel noise = NoiseModel::paperDefault();

    struct Config
    {
        const char *name;
        int bondPoints;
    };
    std::vector<Config> configs =
        fullMode() ? std::vector<Config>{{"LiH", 5}, {"NaH", 3}}
                   : std::vector<Config>{{"LiH", 3}, {"NaH", 1}};

    for (const auto &cfg : configs) {
        const auto &entry = benchmarkMolecule(cfg.name);
        std::printf("\n=== %s ===\n", cfg.name);
        std::printf("%-7s %12s", "bond(A)", "GroundState");
        for (double r : ratios)
            std::printf("   noisy%3.0f%%", 100 * r);
        std::printf("\n");

        for (int bp = 0; bp < cfg.bondPoints; ++bp) {
            double bond = cfg.bondPoints == 1
                ? entry.equilibriumBond
                : entry.sweepLo +
                    (entry.sweepHi - entry.sweepLo) * bp /
                        double(cfg.bondPoints - 1);
            MolecularProblem prob =
                buildMolecularProblem(entry, bond);
            double exact = lanczosGroundEnergy(prob.hamiltonian);
            Ansatz full =
                buildUccsd(prob.nSpatial, prob.nElectrons);

            std::printf("%-7.2f %12.5f", bond, exact);
            for (double ratio : ratios) {
                CompressedAnsatz comp =
                    compressAnsatz(full, prob.hamiltonian, ratio);
                double energy;
                if (fullMode()) {
                    VqeOptions o;
                    o.spsaIter = 200;
                    energy = runVqeNoisy(prob.hamiltonian,
                                         comp.ansatz, noise, o)
                                 .energy;
                } else {
                    VqeResult clean =
                        runVqe(prob.hamiltonian, comp.ansatz);
                    energy = ansatzEnergyNoisy(prob.hamiltonian,
                                               comp.ansatz,
                                               clean.params, noise);
                }
                std::printf(" %11.5f", energy);
            }
            std::printf("\n");
        }
    }

    rule('=');
    const CacheStats cs = globalCircuitCache().stats();
    std::printf("compile cache: %zu hits (%zu angle rebinds), %zu "
                "misses, %zu resident entries\n",
                cs.hits, cs.rebinds, cs.misses, cs.entries);
    std::printf("expected shape: noisy energies track the exact "
                "landscape; the error floor reflects the\n"
                "parameter-count vs gate-noise trade-off of "
                "Section VI-D (more parameters help until the\n"
                "added CNOT noise masks them).\n");
    return 0;
}
