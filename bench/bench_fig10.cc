/**
 * @file
 * Figure 10 reproduction: noisy VQE case studies on LiH and NaH
 * with a depolarizing error model (CNOT error rate 1e-4), driven
 * through the sweep facade — the (molecule, bond, ratio) grid is
 * one SweepSpec whose jobs run through qcc::Experiment on the
 * engine's worker pool with the shared compile cache (every noisy
 * energy evaluation after the first for a given ansatz rebinds
 * angles on the memoized circuit structure instead of
 * re-synthesizing it).
 *
 * Quick mode optimizes parameters on the noise-free objective (the
 * sweep) and evaluates them once under noise from the returned
 * in-memory handles (minutes); QCC_FULL=1 optimizes directly on the
 * noisy objective with SPSA, which is the paper's actual protocol
 * and costs CPU-hours.
 */

#include <cstdio>

#include "bench_util.hh"
#include "compiler/cache.hh"
#include "sim/noise_model.hh"
#include "sweep/sweep_engine.hh"
#include "vqe/vqe.hh"

using namespace qcc;
using namespace qccbench;

int
main()
{
    setVerbose(false);
    banner("Figure 10: noisy VQE case studies (LiH, NaH), "
           "CNOT depolarizing error 1e-4");
    if (!fullMode())
        std::printf("quick mode: noisy evaluation at the noise-free "
                    "optimum (QCC_FULL=1 for noisy SPSA)\n");

    const std::vector<double> ratios = {0.1, 0.3, 0.5, 0.7, 0.9};
    NoiseModel noise = NoiseModel::paperDefault();

    struct Config
    {
        const char *name;
        int bondPoints;
    };
    std::vector<Config> configs =
        fullMode() ? std::vector<Config>{{"LiH", 5}, {"NaH", 3}}
                   : std::vector<Config>{{"LiH", 3}, {"NaH", 1}};

    // The whole figure as one sweep: explicit jobs in (config,
    // bond, ratio) order, so the printing below can index the
    // store's job list directly.
    SweepSpec sweep;
    sweep.name = "fig10";
    sweep.base.reference = true; // GroundState column
    if (fullMode()) {
        sweep.base.mode = "noisy";
        sweep.base.optimizer = "spsa";
        sweep.base.spsaIter = 200;
        sweep.base.cnotError = noise.cnotDepolarizing;
    }
    for (const auto &cfg : configs) {
        const auto &entry = benchmarkMolecule(cfg.name);
        for (int bp = 0; bp < cfg.bondPoints; ++bp) {
            const double bond = cfg.bondPoints == 1
                ? entry.equilibriumBond
                : entry.sweepLo +
                    (entry.sweepHi - entry.sweepLo) * bp /
                        double(cfg.bondPoints - 1);
            for (double ratio : ratios) {
                ExperimentSpec job = sweep.base;
                job.molecule = cfg.name;
                job.bond = bond;
                job.compression = ratio;
                sweep.explicitJobs.push_back(job);
            }
        }
    }

    SweepEngine engine(sweep);
    ResultStore store = engine.run();

    size_t jobIdx = 0;
    for (const auto &cfg : configs) {
        std::printf("\n=== %s ===\n", cfg.name);
        std::printf("%-7s %12s", "bond(A)", "GroundState");
        for (double r : ratios)
            std::printf("   noisy%3.0f%%", 100 * r);
        std::printf("\n");

        for (int bp = 0; bp < cfg.bondPoints; ++bp) {
            // Bond and GroundState columns come from the row's
            // records (any finished one carries them), printed
            // before the ratio cells so a failed job cannot shift
            // the table.
            const SweepJobRecord *rowRef = nullptr;
            for (size_t ri = 0; ri < ratios.size(); ++ri)
                if (store.jobs()[jobIdx + ri].finished()) {
                    rowRef = &store.jobs()[jobIdx + ri];
                    break;
                }
            if (rowRef)
                std::printf("%-7.2f %12.5f",
                            rowRef->effectiveSpec().bond,
                            rowRef->result.fci);
            else
                std::printf("%-7s %12s", "-", "failed");

            for (double ratio : ratios) {
                (void)ratio;
                const SweepJobRecord &rec = store.jobs()[jobIdx++];
                if (!rec.finished()) {
                    std::printf(" %11s", "failed");
                    continue;
                }
                const ExperimentResult &res = rec.result;
                // Quick mode: one noisy read-out at the noise-free
                // optimum, composed from the result's in-memory
                // handles. Full mode optimized the noisy objective
                // directly.
                const double energy = fullMode()
                    ? res.energy()
                    : ansatzEnergyNoisy(res.hamiltonian, res.ansatz,
                                        res.vqe.params, noise);
                std::printf(" %11.5f", energy);
            }
            std::printf("\n");
        }
    }

    rule('=');
    const CacheStats cs = globalCircuitCache().stats();
    std::printf("compile cache: %zu hits (%zu angle rebinds), %zu "
                "misses, %zu resident entries\n",
                cs.hits, cs.rebinds, cs.misses, cs.entries);
    std::printf("expected shape: noisy energies track the exact "
                "landscape; the error floor reflects the\n"
                "parameter-count vs gate-noise trade-off of "
                "Section VI-D (more parameters help until the\n"
                "added CNOT noise masks them).\n");
    store.write(); // SWEEP_fig10.json under QCC_JSON
    return 0;
}
