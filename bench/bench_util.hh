/**
 * @file
 * Shared helpers for the reproduction benches: quick/full profile
 * selection (QCC_FULL=1 environment variable), table formatting, and
 * machine-readable JSON capture. Every bench prints the rows of the
 * paper table/figure it regenerates; quick mode trims molecule sizes
 * and Monte-Carlo / optimizer budgets so the whole suite runs in
 * minutes on a laptop, while full mode matches the paper's scale.
 *
 * Setting QCC_JSON=1 (or QCC_JSON=<directory>) additionally writes
 * each bench's headline numbers as BENCH_<name>.json, so result
 * trajectories can be captured across revisions without scraping
 * stdout.
 */

#ifndef QCC_BENCH_BENCH_UTIL_HH
#define QCC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace qccbench {

/** True when QCC_FULL=1 requests the paper-scale sweep. */
inline bool
fullMode()
{
    const char *env = std::getenv("QCC_FULL");
    return env && std::string(env) == "1";
}

/** Print a separator line. */
inline void
rule(char c = '-', int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/** Bench banner with mode note. */
inline void
banner(const std::string &title)
{
    rule('=');
    std::printf("%s  [%s mode]\n", title.c_str(),
                fullMode() ? "full" : "quick");
    rule('=');
}

/**
 * Machine-readable result sink. Rows of labeled metric maps are
 * collected during the run and flushed to BENCH_<name>.json on
 * destruction when QCC_JSON is set; otherwise every call is a no-op.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench_name)
        : name(std::move(bench_name))
    {
        const char *env = std::getenv("QCC_JSON");
        if (!env)
            return;
        std::string dir(env);
        if (dir.empty() || dir == "0")
            return;
        path = (dir == "1" ? std::string() : dir + "/") +
               "BENCH_" + name + ".json";
    }

    JsonReport(const JsonReport &) = delete;
    JsonReport &operator=(const JsonReport &) = delete;

    ~JsonReport() { write(); }

    bool enabled() const { return !path.empty(); }

    /** Append one labeled row of metric key/value pairs. */
    void
    row(const std::string &label,
        std::vector<std::pair<std::string, double>> metrics)
    {
        if (enabled())
            rows.emplace_back(label, std::move(metrics));
    }

    /** Flush to disk (idempotent; also run by the destructor). */
    void
    write()
    {
        if (!enabled() || written)
            return;
        written = true; // one attempt, even if it fails
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            qcc::warn("JsonReport: cannot write " + path);
            return;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name.c_str());
        std::fprintf(f, "  \"mode\": \"%s\",\n",
                     fullMode() ? "full" : "quick");
        std::fprintf(f, "  \"rows\": [");
        for (size_t r = 0; r < rows.size(); ++r) {
            std::fprintf(f, "%s\n    {\"label\": \"%s\"",
                         r ? "," : "", rows[r].first.c_str());
            for (const auto &[k, v] : rows[r].second)
                std::fprintf(f, ", \"%s\": %.12g", k.c_str(), v);
            std::fprintf(f, "}");
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        std::printf("[json] wrote %s\n", path.c_str());
    }

  private:
    std::string name;
    std::string path;
    std::vector<std::pair<
        std::string, std::vector<std::pair<std::string, double>>>>
        rows;
    bool written = false;
};

} // namespace qccbench

#endif // QCC_BENCH_BENCH_UTIL_HH
