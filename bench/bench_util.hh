/**
 * @file
 * Shared helpers for the reproduction benches: quick/full profile
 * selection (QCC_FULL=1 environment variable) and table formatting.
 * Every bench prints the rows of the paper table/figure it
 * regenerates; quick mode trims molecule sizes and Monte-Carlo /
 * optimizer budgets so the whole suite runs in minutes on a laptop,
 * while full mode matches the paper's scale.
 */

#ifndef QCC_BENCH_BENCH_UTIL_HH
#define QCC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace qccbench {

/** True when QCC_FULL=1 requests the paper-scale sweep. */
inline bool
fullMode()
{
    const char *env = std::getenv("QCC_FULL");
    return env && std::string(env) == "1";
}

/** Print a separator line. */
inline void
rule(char c = '-', int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/** Bench banner with mode note. */
inline void
banner(const std::string &title)
{
    rule('=');
    std::printf("%s  [%s mode]\n", title.c_str(),
                fullMode() ? "full" : "quick");
    rule('=');
}

} // namespace qccbench

#endif // QCC_BENCH_BENCH_UTIL_HH
