/**
 * @file
 * Ablation (Section VII, "hardware architecture variants"): sweep
 * the X-Tree child degree and compare mapping overhead against
 * coupler count and yield — the Pareto trade the paper flags as
 * future work. Degree 1 is a line; degree 3 is the paper's X-Tree.
 */

#include <cstdio>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "arch/yield.hh"
#include "bench_util.hh"
#include "chem/molecules.hh"
#include "common/rng.hh"
#include "compiler/merge_to_root.hh"
#include "ferm/hamiltonian.hh"

using namespace qcc;
using namespace qccbench;

int
main()
{
    setVerbose(false);
    banner("Ablation: X-Tree child-degree sweep "
           "(overhead vs coupler count vs yield)");

    std::vector<std::string> molecules =
        fullMode()
            ? std::vector<std::string>{"LiH", "NaH", "HF", "BeH2",
                                       "H2O"}
            : std::vector<std::string>{"LiH", "NaH", "HF", "BeH2", "H2O"};
    const double ratio = 0.9;
    const int samples = fullMode() ? 40000 : 8000;

    std::printf("%-8s %9s %9s %18s %12s\n", "degree", "qubits",
                "couplers", "overhead (CNOTs)", "yield@0.4");
    rule();

    for (unsigned degree : {1u, 2u, 3u}) {
        XTree tree = makeXTree(17, 4, degree);

        size_t overhead = 0;
        for (const auto &name : molecules) {
            const auto &entry = benchmarkMolecule(name);
            MolecularProblem prob = buildMolecularProblem(
                entry, entry.equilibriumBond);
            Ansatz full =
                buildUccsd(prob.nSpatial, prob.nElectrons);
            CompressedAnsatz comp =
                compressAnsatz(full, prob.hamiltonian, ratio);
            std::vector<double> zeros(comp.ansatz.nParams, 0.0);
            overhead +=
                mergeToRootCompile(comp.ansatz, zeros, tree)
                    .overheadCnots();
        }

        auto freqs = allocateFrequencies(tree.graph);
        Rng rng(deriveSeed(7));
        double y = simulateYield(tree.graph, freqs,
                                 0.4 * paperPrecisionToSigma,
                                 samples, rng);

        std::printf("%-8u %9u %9zu %18zu %12.4f\n", degree,
                    tree.graph.numQubits(), tree.graph.numEdges(),
                    overhead, y);
    }
    rule();
    std::printf("trees always use N-1 couplers; deeper (low-degree) "
                "trees raise routing overhead at equal yield,\n"
                "so the degree-3 X-Tree sits on the Pareto frontier "
                "the paper proposes.\n");
    return 0;
}
