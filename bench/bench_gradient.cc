/**
 * @file
 * Gradient-engine study: serial (per-evaluation full replay) vs
 * batched (prefix-shared / pair-differenced, thread-pool fan-out)
 * parameter-shift gradients on LiH, in all three evaluation modes,
 * plus analytic vs sampled gradient quality at a sweep of shot
 * budgets. Headline numbers land in BENCH_gradient.json under
 * QCC_JSON. The batched-vs-serial ratio on the gate-level noisy mode
 * is algorithmic (pair-difference suffix sweeps), so it holds even
 * on one core; the statevector modes additionally scale with
 * QCC_THREADS, drawing their per-task scratch states from the
 * common/parallel buffer pool. QCC_FULL=1 adds a 14-qubit NH3 row.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "api/registries.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "ferm/hamiltonian.hh"
#include "sim/noise_model.hh"
#include "vqe/expectation_engine.hh"
#include "vqe/gradient.hh"

#include "bench_util.hh"

using namespace qcc;

namespace {

using clock_type = std::chrono::steady_clock;

double
millisSince(clock_type::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               clock_type::now() - t0)
        .count();
}

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    double m = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

} // namespace

int
main()
{
    setVerbose(false);
    qccbench::banner("Gradient engine: serial vs batched "
                     "parameter shift (LiH)");
    qccbench::JsonReport json("gradient");

    const auto &entry = benchmarkMolecule("LiH");
    MolecularProblem prob = buildMolecularProblem(entry, 1.6);
    Ansatz ansatz = buildUccsd(prob.nSpatial, prob.nElectrons);
    std::vector<double> params(ansatz.nParams);
    for (size_t i = 0; i < params.size(); ++i)
        params[i] = 0.05 * double(i + 1);

    const int reps = qccbench::fullMode() ? 10 : 3;
    ExpectationEngine ee(prob.hamiltonian);
    NoiseModel noise = NoiseModel::paperDefault();
    SamplingOptions sampling;

    ParameterShiftEngine batched(prob.hamiltonian, ansatz);
    GradientOptions serialOpts;
    serialOpts.batched = false;
    ParameterShiftEngine serial(prob.hamiltonian, ansatz,
                                serialOpts);

    std::printf("molecule LiH: %u qubits, %u params, %zu shifted "
                "evaluations per gradient, %u threads\n\n",
                ansatz.nQubits, ansatz.nParams,
                batched.numShiftedEvaluations(), parallelThreads());
    std::printf("%-10s %12s %12s %9s\n", "mode", "serial ms",
                "batched ms", "speedup");

    // Serial baseline: the generic engine path with batching off —
    // every shifted energy is an independent full replay, exactly
    // what a driver evaluating one energy at a time would do.
    // Batched: prefix-shared (statevector) or pair-differenced
    // (density-matrix) sweeps fanned over the pool.
    auto timeRow = [&](const char *mode, auto serialFn,
                       auto batchedFn) {
        serialFn(); // warm caches and the thread pool
        auto t0 = clock_type::now();
        for (int r = 0; r < reps; ++r)
            serialFn();
        const double serialMs = millisSince(t0) / reps;
        batchedFn();
        t0 = clock_type::now();
        for (int r = 0; r < reps; ++r)
            batchedFn();
        const double batchedMs = millisSince(t0) / reps;
        const double speedup = serialMs / batchedMs;
        std::printf("%-10s %12.3f %12.3f %8.2fx\n", mode, serialMs,
                    batchedMs, speedup);
        json.row(mode, {{"serial_ms", serialMs},
                        {"batched_ms", batchedMs},
                        {"speedup", speedup}});
    };

    // Backends come from the registry (no direct construction): the
    // same factories an ExperimentSpec's backend keys resolve to.
    const BackendFactoryFn &makeSv =
        backendRegistry().get("statevector");
    const BackendFactoryFn &makeDm =
        backendRegistry().get("density_matrix");
    auto svMake = [&] { return makeSv({ansatz.nQubits, {}}); };
    auto svEnergy = [&](SimBackend &b, size_t) {
        return ee.energy(b);
    };
    auto svEstimate = [&](const Statevector &psi, size_t) {
        return ee.energy(psi);
    };
    timeRow(
        "ideal",
        [&] { serial.gradient(params, svMake, svEnergy); },
        [&] { batched.gradientStatevector(params, svEstimate); });

    auto dmMake = [&] { return makeDm({ansatz.nQubits, noise}); };
    auto dmEnergy = [&](SimBackend &b, size_t) {
        return b.expectation(prob.hamiltonian);
    };
    timeRow(
        "noisy",
        [&] { serial.gradient(params, dmMake, dmEnergy); },
        [&] { batched.gradientNoisy(params, noise); });

    SamplingEngine samplerEngine(prob.hamiltonian, sampling);
    const uint64_t gradSeed = deriveSeed(0x6772); // "gr"
    auto sampledEnergy = [&](SimBackend &b, size_t task) {
        Rng rng(deriveStream(gradSeed, task));
        return samplerEngine.measure(b, rng).energy;
    };
    auto sampledEstimate = [&](const Statevector &psi, size_t task) {
        Rng rng(deriveStream(gradSeed, task));
        return samplerEngine.measure(psi, rng).energy;
    };
    timeRow(
        "sampled",
        [&] { serial.gradient(params, svMake, sampledEnergy); },
        [&] {
            batched.gradientStatevector(params, sampledEstimate);
        });

    // Gradient quality: sampled estimates against the analytic
    // parameter-shift gradient as the shot budget grows.
    qccbench::rule();
    std::printf("analytic vs sampled gradient (max |delta| over "
                "components)\n");
    std::vector<double> exact =
        batched.gradientStatevector(params, svEstimate);
    const std::vector<uint64_t> budgets =
        qccbench::fullMode()
            ? std::vector<uint64_t>{1024, 8192, 65536, 262144}
            : std::vector<uint64_t>{1024, 8192, 65536};
    for (uint64_t shots : budgets) {
        SamplingOptions so;
        so.shots = shots;
        SamplingEngine se(prob.hamiltonian, so);
        auto est = [&](const Statevector &psi, size_t task) {
            Rng rng(deriveStream(deriveSeed(shots), task));
            return se.measure(psi, rng).energy;
        };
        std::vector<double> g =
            batched.gradientStatevector(params, est);
        const double err = maxAbsDiff(g, exact);
        std::printf("  shots=%-8llu max_err=%.3e\n",
                    (unsigned long long)shots, err);
        json.row("sampled_shots_" + std::to_string(shots),
                 {{"shots", double(shots)}, {"max_err", err}});
    }

    // Full mode: a 14-qubit row (NH3, 20%-compressed UCCSD) where
    // the buffer-pooled per-task statevectors and the thread fan-out
    // actually have 2^14 amplitudes to chew on. One rep per variant:
    // the serial baseline replays every prefix from scratch.
    if (qccbench::fullMode()) {
        qccbench::rule();
        std::printf("QCC_FULL: 14-qubit gradient (NH3, 20%% "
                    "compressed)\n");
        const auto &bigEntry = benchmarkMolecule("NH3");
        MolecularProblem big = buildMolecularProblem(
            bigEntry, bigEntry.equilibriumBond);
        Ansatz bigFull =
            buildUccsd(big.nSpatial, big.nElectrons);
        Ansatz bigAnsatz =
            compressAnsatz(bigFull, big.hamiltonian, 0.2).ansatz;
        std::vector<double> bigParams(bigAnsatz.nParams);
        for (size_t i = 0; i < bigParams.size(); ++i)
            bigParams[i] = 0.05 * double(i + 1);
        ExpectationEngine bigEe(big.hamiltonian);
        ParameterShiftEngine bigBatched(big.hamiltonian, bigAnsatz);
        ParameterShiftEngine bigSerial(big.hamiltonian, bigAnsatz,
                                       serialOpts);
        auto bigEstimate = [&](const Statevector &psi, size_t) {
            return bigEe.energy(psi);
        };
        auto bigMake = [&] {
            return makeSv({bigAnsatz.nQubits, {}});
        };
        auto bigEnergy = [&](SimBackend &b, size_t) {
            return bigEe.energy(b);
        };
        std::printf("%u qubits, %u params, %zu shifted evaluations "
                    "per gradient\n",
                    bigAnsatz.nQubits, bigAnsatz.nParams,
                    bigBatched.numShiftedEvaluations());
        auto t0 = clock_type::now();
        bigSerial.gradient(bigParams, bigMake, bigEnergy);
        const double serialMs = millisSince(t0);
        t0 = clock_type::now();
        bigBatched.gradientStatevector(bigParams, bigEstimate);
        const double batchedMs = millisSince(t0);
        std::printf("%-10s %12.3f %12.3f %8.2fx\n", "ideal_14q",
                    serialMs, batchedMs, serialMs / batchedMs);
        json.row("ideal_14q", {{"serial_ms", serialMs},
                               {"batched_ms", batchedMs},
                               {"speedup", serialMs / batchedMs}});
    }

    json.write();
    return 0;
}
