/**
 * @file
 * Ablation (Section V-A): value of the hierarchical initial layout.
 * Merge-to-Root is run from the Algorithm 2 layout, the identity
 * layout, and random layouts; overhead differences isolate the
 * layout contribution from the router.
 */

#include <cstdio>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "bench_util.hh"
#include "chem/molecules.hh"
#include "common/rng.hh"
#include "compiler/merge_to_root.hh"
#include "ferm/hamiltonian.hh"

using namespace qcc;
using namespace qccbench;

int
main()
{
    setVerbose(false);
    banner("Ablation: hierarchical vs identity vs random initial "
           "layout (MtR on XTree17Q)");

    std::vector<std::string> molecules =
        fullMode() ? std::vector<std::string>{"LiH", "NaH", "HF",
                                              "BeH2", "H2O", "BH3"}
                   : std::vector<std::string>{"LiH", "NaH", "HF",
                                              "BeH2"};
    const int randomTrials = fullMode() ? 5 : 3;
    const double ratio = 0.5;

    XTree tree = makeXTree(17);
    std::printf("%-6s %14s %10s %14s\n", "Mol", "hierarchical",
                "identity", "random(mean)");
    rule();

    for (const auto &name : molecules) {
        const auto &entry = benchmarkMolecule(name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
        CompressedAnsatz comp =
            compressAnsatz(full, prob.hamiltonian, ratio);
        std::vector<double> zeros(comp.ansatz.nParams, 0.0);

        MtrResult hier =
            mergeToRootCompile(comp.ansatz, zeros, tree);
        MtrResult ident = mergeToRootCompile(
            comp.ansatz, zeros, tree,
            Layout::identity(comp.ansatz.nQubits, 17), true);

        double randMean = 0;
        for (int t = 0; t < randomTrials; ++t) {
            Rng rng(deriveSeed(500 + t));
            MtrResult r = mergeToRootCompile(
                comp.ansatz, zeros, tree,
                Layout::random(comp.ansatz.nQubits, 17, rng), true);
            randMean += double(r.overheadCnots());
        }
        randMean /= randomTrials;

        std::printf("%-6s %14zu %10zu %14.1f\n", name.c_str(),
                    hier.overheadCnots(), ident.overheadCnots(),
                    randMean);
    }
    rule();
    std::printf("hierarchical layout should dominate; identity is "
                "competitive only on tiny programs.\n");
    return 0;
}
