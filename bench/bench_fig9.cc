/**
 * @file
 * Figure 9 reproduction: simulated ground-state energy, energy error
 * vs the exact ground state, and optimizer iterations to converge,
 * for compressed ansatzes at 10/30/50/70/90% vs the full UCCSD and
 * the random-50% baseline, across bond-length sweeps.
 *
 * Quick mode runs LiH and NaH over a coarse bond grid with 2 random
 * seeds; QCC_FULL=1 extends to HF/BeH2/H2O with the paper's 5-seed
 * random baseline (the larger molecules follow the same code path
 * but need many CPU-hours, as the paper itself notes).
 */

#include <cstdio>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "bench_util.hh"
#include "chem/molecules.hh"
#include "common/rng.hh"
#include "ferm/hamiltonian.hh"
#include "sim/backend.hh"
#include "sim/lanczos.hh"
#include "vqe/driver.hh"
#include "vqe/estimation.hh"

using namespace qcc;
using namespace qccbench;

namespace {

const std::vector<double> ratios = {0.1, 0.3, 0.5, 0.7, 0.9};

/** Ideal-mode minimization through the strategy-injected driver. */
VqeResult
minimizeIdeal(const PauliSum &h, const Ansatz &a)
{
    VqeDriver driver(
        h, a, {},
        makeEstimationStrategy("ideal",
                               EstimationConfig{&h, {}, {}, {}}));
    return driver.run();
}

struct SweepAccumulator
{
    double sumIterFull = 0;
    std::vector<double> sumIterRatio =
        std::vector<double>(ratios.size(), 0.0);
    std::vector<double> sumAbsErrRatio =
        std::vector<double>(ratios.size(), 0.0);
    double sumAbsErrFull = 0;
    int points = 0;
};

} // namespace

int
main()
{
    setVerbose(false);
    banner("Figure 9: accuracy and iterations vs compression ratio");
    JsonReport json("fig9");

    std::vector<std::string> molecules =
        fullMode()
            ? std::vector<std::string>{"LiH", "NaH", "HF", "BeH2",
                                       "H2O"}
            : std::vector<std::string>{"LiH", "NaH"};
    const int randomSeeds = fullMode() ? 5 : 2;
    const int bondPoints = fullMode() ? 7 : 3;

    SweepAccumulator acc;

    for (const auto &name : molecules) {
        const auto &entry = benchmarkMolecule(name);
        std::printf("\n=== %s ===\n", name.c_str());
        std::printf("%-7s %12s %12s", "bond(A)", "GroundState",
                    "OrigUCCSD");
        for (double r : ratios)
            std::printf("     %3.0f%%", 100 * r);
        std::printf("  Rand50%%(mean)\n");

        for (int bp = 0; bp < bondPoints; ++bp) {
            double bond = entry.sweepLo +
                (entry.sweepHi - entry.sweepLo) * bp /
                    double(bondPoints - 1);
            MolecularProblem prob =
                buildMolecularProblem(entry, bond);
            double exact = lanczosGroundEnergy(prob.hamiltonian);
            Ansatz full =
                buildUccsd(prob.nSpatial, prob.nElectrons);

            VqeResult rFull =
                minimizeIdeal(prob.hamiltonian, full);
            std::printf("%-7.2f %12.5f %12.5f", bond, exact,
                        rFull.energy);

            std::vector<double> energies, iters;
            for (size_t ri = 0; ri < ratios.size(); ++ri) {
                CompressedAnsatz comp = compressAnsatz(
                    full, prob.hamiltonian, ratios[ri]);
                VqeResult r =
                    minimizeIdeal(prob.hamiltonian, comp.ansatz);
                std::printf(" %8.5f", r.energy);
                acc.sumIterRatio[ri] += r.iterations;
                acc.sumAbsErrRatio[ri] +=
                    std::fabs(r.energy - exact);
                energies.push_back(r.energy);
            }

            double randMean = 0;
            for (int s = 0; s < randomSeeds; ++s) {
                Rng rng(deriveSeed(1000 + s));
                CompressedAnsatz rnd =
                    randomCompress(full, 0.5, rng);
                randMean +=
                    minimizeIdeal(prob.hamiltonian, rnd.ansatz)
                        .energy;
            }
            randMean /= randomSeeds;
            std::printf("   %12.5f\n", randMean);

            acc.sumIterFull += rFull.iterations;
            acc.sumAbsErrFull += std::fabs(rFull.energy - exact);
            ++acc.points;
        }

        // Per-molecule iteration profile at equilibrium.
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
        std::printf(
            "iterations @eq:      full=%d ",
            minimizeIdeal(prob.hamiltonian, full).iterations);
        for (double r : ratios) {
            CompressedAnsatz comp =
                compressAnsatz(full, prob.hamiltonian, r);
            std::printf(
                " %3.0f%%=%d", 100 * r,
                minimizeIdeal(prob.hamiltonian, comp.ansatz)
                    .iterations);
        }
        std::printf("\n");
    }

    rule('=');
    std::printf("aggregate over %d sweep points:\n", acc.points);
    std::printf("%-12s %16s %20s\n", "config", "mean |error| (Ha)",
                "iteration speedup");
    std::printf("%-12s %16.5f %19.1fx\n", "Orig UCCSD",
                acc.sumAbsErrFull / acc.points, 1.0);
    json.row("full_uccsd",
             {{"mean_abs_error_ha", acc.sumAbsErrFull / acc.points},
              {"iteration_speedup", 1.0},
              {"sweep_points", double(acc.points)}});
    for (size_t ri = 0; ri < ratios.size(); ++ri) {
        char label[16];
        std::snprintf(label, sizeof(label), "%.0f%% Param.",
                      100 * ratios[ri]);
        const double meanErr = acc.sumAbsErrRatio[ri] / acc.points;
        const double speedup =
            acc.sumIterFull / std::max(1.0, acc.sumIterRatio[ri]);
        std::printf("%-12s %16.5f %19.1fx\n", label, meanErr,
                    speedup);
        char jlabel[24];
        std::snprintf(jlabel, sizeof(jlabel), "ratio_%.0f",
                      100 * ratios[ri]);
        json.row(jlabel, {{"mean_abs_error_ha", meanErr},
                          {"iteration_speedup", speedup}});
    }
    std::printf("(paper: speedups 14.3x/4.8x/2.5x/1.6x/1.1x for "
                "10..90%%; ~0.05%% energy error at 50%%)\n");
    return 0;
}
