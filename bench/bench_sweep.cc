/**
 * @file
 * SweepEngine throughput study: the same >= 8-job sweep executed
 * several ways — serial with cold caches (compile cache and problem
 * memo cleared before every job, so each job pays full chemistry +
 * layout/routing), serial with the shared in-memory caches,
 * concurrent with the shared caches both with the per-job width cap
 * (capJobWidth: N jobs split parallelThreads() between them) and
 * without it (every job sizes its sweeps to the whole machine —
 * the nested-parallelism oversubscription the cap fixes), the same
 * sweep forced through kind=estimate (no simulator, costing only),
 * serial
 * against a cold persistent store (fresh directory, so this run
 * pays the write-through on top of the shared-cache path), serial
 * against the warm persistent store with the in-memory caches
 * dropped once (every compile and chemistry build is served from
 * disk — the restarted-process / second-sweep scenario), and the
 * sweepd process pool against that warm store (one forked worker
 * per job sharing compiles cross-process through the disk tier).
 * The jobs differ only in seed, which is exactly the
 * repeated-compilation shape batch studies produce (same molecule,
 * new parameterization), so the cold-vs-shared gap isolates what
 * the process-wide caches buy a sweep and the warm-disk row shows
 * what survives a process restart. Speedups land in
 * BENCH_sweep.json; the aggregate store is written as
 * SWEEP_bench_sweep.json when QCC_JSON is set.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_util.hh"
#include "compiler/cache.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "store/problem_store.hh"
#include "store/store.hh"
#include "sweep/sweep_engine.hh"
#include "sweepd/service.hh"

using namespace qcc;
using namespace qccbench;

namespace {

using clock_type = std::chrono::steady_clock;

SweepSpec
studySpec(int n_seeds)
{
    SweepSpec spec;
    spec.name = "bench_sweep";
    spec.base.molecule = "BeH2";
    spec.base.optimizer = "spsa";
    spec.base.spsaIter = 2; // compile-dominated jobs
    spec.base.reference = false;
    spec.base.pipeline = "mtr";
    spec.base.architecture = "xtree17";
    SweepAxis seeds;
    seeds.field = "seed";
    for (int s = 1; s <= n_seeds; ++s) {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = double(s);
        v.text = std::to_string(s);
        seeds.values.push_back(v);
    }
    spec.axes.push_back(seeds);
    return spec;
}

struct RunOutcome
{
    double wallMs = 0.0;
    size_t done = 0;
    size_t cacheHits = 0;
    size_t cacheMisses = 0;
    size_t diskHits = 0;     // circuit + problem entries from disk
    size_t diskWrites = 0;
    size_t problemBuilds = 0;
};

RunOutcome
runStudy(const SweepSpec &spec, unsigned concurrency, bool cold_cache,
         ResultStore *store_out = nullptr, bool cap_width = true)
{
    // Every row starts with empty in-memory caches; whether jobs
    // after the first warm them up is the row's cold_cache knob, and
    // whether the persistent tier backs them is the caller's
    // setStoreDir state.
    globalCircuitCache().clear();
    globalProblemStore().clearMemory();
    const CacheStats before = globalCircuitCache().stats();
    const StoreStats sBefore = storeStats();

    SweepEngineOptions opts;
    opts.concurrency = concurrency;
    opts.coldCompileCache = cold_cache;
    opts.coldProblemCache = cold_cache;
    opts.capJobWidth = cap_width;
    SweepEngine engine(spec, opts);

    const auto t0 = clock_type::now();
    ResultStore store = engine.run();
    RunOutcome out;
    out.wallMs = std::chrono::duration<double, std::milli>(
                     clock_type::now() - t0)
                     .count();
    out.done = store.countWithStatus(JobStatus::Done);
    const CacheStats after = globalCircuitCache().stats();
    const StoreStats sAfter = storeStats();
    out.cacheHits = after.hits - before.hits;
    out.cacheMisses = after.misses - before.misses;
    out.diskHits = (sAfter.circuitDiskHits - sBefore.circuitDiskHits) +
                   (sAfter.problemDiskHits - sBefore.problemDiskHits);
    out.diskWrites =
        (sAfter.circuitDiskWrites - sBefore.circuitDiskWrites) +
        (sAfter.problemDiskWrites - sBefore.problemDiskWrites);
    out.problemBuilds = sAfter.problemBuilds - sBefore.problemBuilds;
    if (store_out)
        *store_out = std::move(store);
    return out;
}

void
printRow(const char *label, const RunOutcome &o)
{
    std::printf("%-24s %10.1f %6zu %7zu %7zu %7zu %7zu %7zu\n",
                label, o.wallMs, o.done, o.cacheHits, o.cacheMisses,
                o.diskHits, o.diskWrites, o.problemBuilds);
}

double
speedup(const RunOutcome &base, const RunOutcome &o)
{
    return o.wallMs > 0 ? base.wallMs / o.wallMs : 0.0;
}

/**
 * The same sweep through the sweepd process pool (one forked worker
 * per job, qcc_sweepd --worker). In-process cache counters are
 * meaningless here — each worker has its own — so the row reports
 * wall clock and completions; with QCC_STORE_DIR pointing at the
 * warm bench store, workers share compiles and chemistry through
 * the disk tier instead.
 */
RunOutcome
runProcessPool(const SweepSpec &spec, unsigned concurrency,
               const std::string &worker_path)
{
    sweepd::SweepdOptions opts;
    opts.workerPath = worker_path;
    opts.concurrency = concurrency;
    opts.resume = false;      // a bench row never adopts
    opts.writeThrough = false;

    sweepd::SweepdService service(opts);
    const auto t0 = clock_type::now();
    ResultStore store = service.submit(spec);
    RunOutcome out;
    out.wallMs = std::chrono::duration<double, std::milli>(
                     clock_type::now() - t0)
                     .count();
    out.done = store.countWithStatus(JobStatus::Done);
    return out;
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("SweepEngine: cold vs shared caches vs persistent store");

    const int nSeeds = fullMode() ? 16 : 8;
    const unsigned width = fullMode() ? parallelThreads() : 4;
    SweepSpec spec = studySpec(nSeeds);

    // The persistent-store rows use a scratch directory next to the
    // bench output; wiped up front so disk_cold is genuinely cold.
    const std::string storeRoot =
        (std::filesystem::temp_directory_path() /
         "qcc_bench_sweep_store")
            .string();
    std::error_code ec;
    std::filesystem::remove_all(storeRoot, ec);
    setStoreDir(""); // in-memory rows run store-off
    setStoreEnabled(true);

    std::printf("study: BeH2 full UCCSD, MtR on XTree17Q, %d "
                "seed-varied jobs\n\n",
                nSeeds);
    std::printf("%-24s %10s %6s %7s %7s %7s %7s %7s\n",
                "configuration", "wall(ms)", "done", "hits",
                "misses", "dhits", "dwrite", "builds");
    rule();

    JsonReport report("sweep");
    auto addRow = [&](const char *key, const RunOutcome &o,
                      const RunOutcome *base, double conc) {
        std::vector<std::pair<std::string, double>> cols = {
            {"wall_ms", o.wallMs},
            {"jobs", double(nSeeds)},
            {"cache_hits", double(o.cacheHits)},
            {"cache_misses", double(o.cacheMisses)},
            {"disk_hits", double(o.diskHits)},
            {"disk_writes", double(o.diskWrites)},
            {"problem_builds", double(o.problemBuilds)}};
        if (conc > 0)
            cols.push_back({"concurrency", conc});
        if (base)
            cols.push_back(
                {"speedup_vs_serial_cold", speedup(*base, o)});
        report.row(key, cols);
    };

    RunOutcome cold = runStudy(spec, 1, true);
    printRow("serial, cold caches", cold);
    addRow("serial_cold", cold, nullptr, 0);

    RunOutcome shared = runStudy(spec, 1, false);
    printRow("serial, shared caches", shared);
    addRow("serial_shared", shared, &cold, 0);

    // Queue-wait probe: delta of the thread pool's
    // parallel.queue_wait_us histogram across the concurrent run —
    // how long tasks sat submitted-but-unclaimed. Milliseconds here
    // would mean the pool, not the work, is the bottleneck.
    MetricHistogram &qwait =
        metricHistogram("parallel.queue_wait_us");
    const MetricHistogram::Snapshot qwBefore = qwait.snapshot();
    ResultStore store("bench_sweep", true);
    RunOutcome conc = runStudy(spec, width, false, &store);
    const MetricHistogram::Snapshot qwAfter = qwait.snapshot();
    printRow(("concurrent x" + std::to_string(width) + ", capped")
                 .c_str(),
             conc);
    addRow("concurrent_capped", conc, &cold, double(width));
    MetricHistogram::Snapshot qw;
    qw.count = qwAfter.count - qwBefore.count;
    qw.sumUs = qwAfter.sumUs - qwBefore.sumUs;
    for (size_t i = 0; i < MetricHistogram::kBuckets; ++i)
        qw.buckets[i] = qwAfter.buckets[i] - qwBefore.buckets[i];
    std::printf("  pool queue wait: %llu tasks, mean %.1f us, "
                "p95 <= %.0f us\n",
                (unsigned long long)qw.count, qw.mean(),
                qw.quantile(0.95));
    report.row("queue_wait",
               {{"tasks", double(qw.count)},
                {"mean_us", qw.mean()},
                {"p95_us", qw.quantile(0.95)}});

    // Instrumentation-overhead row: the identical concurrent run
    // with QCC_TRACE on, every span recording into the in-memory
    // buffers. Acceptance: within 3% of the untraced row — spans
    // are two clock reads and an appended struct, not a lock.
    setTraceEnabled(true);
    clearTrace();
    RunOutcome traced = runStudy(spec, width, false);
    setTraceEnabled(false);
    const size_t tracedEvents = traceEventCount();
    clearTrace();
    const double overheadPct =
        conc.wallMs > 0
            ? (traced.wallMs / conc.wallMs - 1.0) * 100.0
            : 0.0;
    printRow(("concurrent x" + std::to_string(width) + ", traced")
                 .c_str(),
             traced);
    report.row("concurrent_traced",
               {{"wall_ms", traced.wallMs},
                {"jobs", double(nSeeds)},
                {"concurrency", double(width)},
                {"trace_events", double(tracedEvents)},
                {"overhead_pct_vs_capped", overheadPct}});

    // Same run without the per-job width cap: every one of the
    // `width` jobs sizes its data-parallel sweeps to the whole
    // machine, oversubscribing it width-fold. The capped row above
    // splits parallelThreads() across the workers instead (results
    // are bit-identical either way; see common/parallel).
    RunOutcome uncapped = runStudy(spec, width, false, nullptr,
                                   /*cap_width=*/false);
    printRow(("concurrent x" + std::to_string(width) + ", uncapped")
                 .c_str(),
             uncapped);
    addRow("concurrent_uncapped", uncapped, &cold, double(width));

    // The same sweep costed instead of run: every job forced to
    // kind=estimate skips the simulator and optimizer entirely and
    // pays only chemistry + synthesis + compile, which the shared
    // caches then collapse across jobs. This row is the floor the
    // --estimate qcc_sweep mode promises ("costing is effectively
    // free" next to a real run of the same spec).
    SweepSpec estSpec = spec;
    estSpec.name = "bench_sweep_estimate";
    estSpec.base.kind = "estimate";
    RunOutcome est = runStudy(estSpec, 1, false);
    printRow("serial, estimate kind", est);
    addRow("estimate_kind", est, &cold, 0);

    // Persistent-store rows: first against an empty directory (pays
    // serialization on every fresh compile/build), then against the
    // directory that run just filled, with the in-memory caches
    // dropped — the "new process, warm disk" case.
    setStoreDir(storeRoot);
    RunOutcome diskCold = runStudy(spec, 1, false);
    printRow("serial, disk store cold", diskCold);
    addRow("disk_cold", diskCold, &cold, 0);

    RunOutcome warmDisk = runStudy(spec, 1, false);
    printRow("serial, disk store warm", warmDisk);
    addRow("warm_disk", warmDisk, &cold, 0);

    // Process-per-job row: the sweepd pool against the store the
    // disk rows just warmed, so forked workers share compiles and
    // chemistry across process boundaries through the disk tier.
    const std::string workerBin =
        (std::filesystem::path(
             sweepd::selfExecutablePath(nullptr))
             .parent_path() /
         "qcc_sweepd")
            .string();
    if (std::filesystem::exists(workerBin)) {
        RunOutcome pool = runProcessPool(spec, width, workerBin);
        printRow(("process pool x" + std::to_string(width) +
                  ", warm disk")
                     .c_str(),
                 pool);
        addRow("process_pool", pool, &cold, double(width));
    } else {
        std::printf("%-24s   (skipped: %s not built)\n",
                    "process pool", workerBin.c_str());
    }
    setStoreDir("");

    rule();
    std::printf("concurrent capped vs serial cold:  %.2fx\n",
                speedup(cold, conc));
    std::printf("width cap vs uncapped:             %.2fx\n",
                speedup(uncapped, conc));
    std::printf("tracing overhead vs capped:        %+.1f%% "
                "(acceptance: <= 3%%)\n",
                overheadPct);
    std::printf("warm disk store vs serial cold:    %.2fx "
                "(acceptance: >= 2x)\n",
                speedup(cold, warmDisk));
    std::printf("estimate kind vs serial cold:      %.2fx\n",
                speedup(cold, est));
    std::printf("expected shape: the shared rows replace all but "
                "one compile and chemistry build per program with "
                "cache hits; the warm-disk row gets the same "
                "effect across process restarts, paying only "
                "deserialization; the capped row avoids running "
                "width x parallelThreads() threads at once.\n");

    store.write(); // SWEEP_bench_sweep.json under QCC_JSON
    std::filesystem::remove_all(storeRoot, ec);
    return 0;
}
