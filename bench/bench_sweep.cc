/**
 * @file
 * SweepEngine throughput study: the same >= 8-job sweep executed
 * three ways — serial with a cold compile cache (the cache is
 * cleared before every job, so each job pays full layout/routing),
 * serial with the shared cache (jobs after the first rebind angles
 * on the memoized structure), and concurrent with the shared cache.
 * The jobs differ only in seed, which is exactly the repeated-
 * compilation shape batch studies produce (same molecule, new
 * parameterization), so the cold-vs-shared gap isolates what the
 * process-wide CircuitCache buys a sweep and the concurrent row
 * adds whatever the cores allow on top. Speedups land in
 * BENCH_sweep.json; the aggregate store is written as
 * SWEEP_bench_sweep.json when QCC_JSON is set.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "compiler/cache.hh"
#include "sweep/sweep_engine.hh"

using namespace qcc;
using namespace qccbench;

namespace {

using clock_type = std::chrono::steady_clock;

SweepSpec
studySpec(int n_seeds)
{
    SweepSpec spec;
    spec.name = "bench_sweep";
    spec.base.molecule = "BeH2";
    spec.base.optimizer = "spsa";
    spec.base.spsaIter = 2; // compile-dominated jobs
    spec.base.reference = false;
    spec.base.pipeline = "mtr";
    spec.base.architecture = "xtree17";
    SweepAxis seeds;
    seeds.field = "seed";
    for (int s = 1; s <= n_seeds; ++s) {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = double(s);
        v.text = std::to_string(s);
        seeds.values.push_back(v);
    }
    spec.axes.push_back(seeds);
    return spec;
}

struct RunOutcome
{
    double wallMs = 0.0;
    size_t done = 0;
    size_t cacheHits = 0;
    size_t cacheMisses = 0;
};

RunOutcome
runStudy(const SweepSpec &spec, unsigned concurrency,
         bool cold_cache, ResultStore *store_out = nullptr)
{
    globalCircuitCache().clear();
    const CacheStats before = globalCircuitCache().stats();

    SweepEngineOptions opts;
    opts.concurrency = concurrency;
    opts.coldCompileCache = cold_cache;
    SweepEngine engine(spec, opts);

    const auto t0 = clock_type::now();
    ResultStore store = engine.run();
    RunOutcome out;
    out.wallMs = std::chrono::duration<double, std::milli>(
                     clock_type::now() - t0)
                     .count();
    out.done = store.countWithStatus(JobStatus::Done);
    const CacheStats after = globalCircuitCache().stats();
    out.cacheHits = after.hits - before.hits;
    out.cacheMisses = after.misses - before.misses;
    if (store_out)
        *store_out = std::move(store);
    return out;
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("SweepEngine: serial cold-cache vs shared-cache vs "
           "concurrent");

    const int nSeeds = fullMode() ? 16 : 8;
    const unsigned width = fullMode() ? parallelThreads() : 4;
    SweepSpec spec = studySpec(nSeeds);

    std::printf("study: BeH2 full UCCSD, MtR on XTree17Q, %d "
                "seed-varied jobs\n\n",
                nSeeds);
    std::printf("%-24s %10s %8s %8s %8s\n", "configuration",
                "wall(ms)", "done", "hits", "misses");
    rule();

    JsonReport report("sweep");

    RunOutcome cold = runStudy(spec, 1, true);
    std::printf("%-24s %10.1f %8zu %8zu %8zu\n",
                "serial, cold cache", cold.wallMs, cold.done,
                cold.cacheHits, cold.cacheMisses);
    report.row("serial_cold", {{"wall_ms", cold.wallMs},
                               {"jobs", double(nSeeds)},
                               {"cache_hits", double(cold.cacheHits)},
                               {"cache_misses",
                                double(cold.cacheMisses)}});

    RunOutcome shared = runStudy(spec, 1, false);
    std::printf("%-24s %10.1f %8zu %8zu %8zu\n",
                "serial, shared cache", shared.wallMs, shared.done,
                shared.cacheHits, shared.cacheMisses);
    report.row("serial_shared",
               {{"wall_ms", shared.wallMs},
                {"jobs", double(nSeeds)},
                {"cache_hits", double(shared.cacheHits)},
                {"cache_misses", double(shared.cacheMisses)},
                {"speedup_vs_serial_cold",
                 shared.wallMs > 0 ? cold.wallMs / shared.wallMs
                                   : 0.0}});

    ResultStore store("bench_sweep", true);
    RunOutcome conc = runStudy(spec, width, false, &store);
    std::printf("%-24s %10.1f %8zu %8zu %8zu\n",
                ("concurrent x" + std::to_string(width) +
                 ", shared")
                    .c_str(),
                conc.wallMs, conc.done, conc.cacheHits,
                conc.cacheMisses);
    const double speedup =
        conc.wallMs > 0 ? cold.wallMs / conc.wallMs : 0.0;
    report.row("concurrent_shared",
               {{"wall_ms", conc.wallMs},
                {"jobs", double(nSeeds)},
                {"concurrency", double(width)},
                {"cache_hits", double(conc.cacheHits)},
                {"cache_misses", double(conc.cacheMisses)},
                {"speedup_vs_serial_cold", speedup}});

    rule();
    std::printf("concurrent shared-cache vs serial cold-cache: "
                "%.2fx\n",
                speedup);
    std::printf("expected shape: the shared rows replace all but "
                "one compile per program with angle rebinds, so "
                "they beat the cold row even single-threaded; "
                "extra cores widen the gap.\n");

    store.write(); // SWEEP_bench_sweep.json under QCC_JSON
    return 0;
}
