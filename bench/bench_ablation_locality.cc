/**
 * @file
 * Ablation (Section III-B): does importance-decreasing string
 * ordering actually improve qubit locality and reduce Merge-to-Root
 * mapping overhead? Compares the compressed ansatz as constructed
 * (importance order) against the same parameter set in original
 * UCCSD program order, on XTree17Q.
 */

#include <algorithm>
#include <cstdio>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "bench_util.hh"
#include "chem/molecules.hh"
#include "compiler/merge_to_root.hh"
#include "ferm/hamiltonian.hh"

using namespace qcc;
using namespace qccbench;

int
main()
{
    setVerbose(false);
    banner("Ablation: importance-ordered vs original-order ansatz "
           "(MtR overhead on XTree17Q)");

    const std::vector<double> ratios = {0.3, 0.5, 0.7, 0.9};
    std::vector<std::string> molecules =
        fullMode() ? std::vector<std::string>{"LiH", "NaH", "HF",
                                              "BeH2", "H2O", "BH3"}
                   : std::vector<std::string>{"LiH", "NaH", "HF",
                                              "BeH2"};

    XTree tree = makeXTree(17);
    std::printf("%-6s %7s %16s %16s\n", "Mol", "ratio",
                "ordered (CNOTs)", "unordered (CNOTs)");
    rule();

    double sumOrdered = 0, sumUnordered = 0;
    for (const auto &name : molecules) {
        const auto &entry = benchmarkMolecule(name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);

        for (double ratio : ratios) {
            CompressedAnsatz ordered =
                compressAnsatz(full, prob.hamiltonian, ratio);

            // Same parameters, original UCCSD order.
            std::vector<unsigned> params = ordered.keptParams;
            std::sort(params.begin(), params.end());
            Ansatz unordered = selectParameters(full, params);

            std::vector<double> z1(ordered.ansatz.nParams, 0.0);
            MtrResult a =
                mergeToRootCompile(ordered.ansatz, z1, tree);
            MtrResult b = mergeToRootCompile(unordered, z1, tree);

            std::printf("%-6s %6.0f%% %16zu %16zu\n", name.c_str(),
                        100 * ratio, a.overheadCnots(),
                        b.overheadCnots());
            sumOrdered += double(a.overheadCnots());
            sumUnordered += double(b.overheadCnots());
        }
    }
    rule();
    std::printf("total overhead: ordered %.0f vs unordered %.0f "
                "(%.1f%% of unordered)\n",
                sumOrdered, sumUnordered,
                sumUnordered > 0
                    ? 100.0 * sumOrdered / sumUnordered
                    : 0.0);
    return 0;
}
