/**
 * @file
 * Figure 11 reproduction: fabrication yield of XTree17Q vs Grid17Q
 * as a function of fabrication precision. The paper's x-axis
 * (0.2-0.6 GHz) maps to per-qubit frequency sigma through the
 * documented calibration constant; yield is the collision-free
 * fraction of Monte-Carlo fabricated devices under the seven-
 * condition frequency-collision model with CR straddling.
 */

#include <cstdio>

#include "api/experiment.hh"
#include "arch/grid.hh"
#include "arch/xtree.hh"
#include "arch/yield.hh"
#include "bench_util.hh"
#include "common/rng.hh"

using namespace qcc;
using namespace qccbench;

int
main()
{
    setVerbose(false);
    banner("Figure 11: yield rate, XTree17Q vs Grid17Q");

    const int samples = fullMode() ? 200000 : 20000;

    XTree tree = makeXTree(17);
    CouplingGraph grid = makeGrid17Q();
    auto fTree = allocateFrequencies(tree.graph);
    auto fGrid = allocateFrequencies(grid);

    std::printf("couplers: XTree17Q = %zu, Grid17Q = %zu\n\n",
                tree.graph.numEdges(), grid.numEdges());
    std::printf("%-22s %12s %12s %8s\n", "precision (GHz)",
                "XTree17Q", "Grid17Q", "ratio");
    rule();

    double ratioAccum = 0.0;
    int ratioCount = 0;
    for (double precision : {0.2, 0.3, 0.4, 0.5, 0.6}) {
        double sigma = precision * paperPrecisionToSigma;
        Rng r1(deriveSeed(17)), r2(deriveSeed(17));
        double yt = simulateYield(tree.graph, fTree, sigma, samples,
                                  r1);
        double yg =
            simulateYield(grid, fGrid, sigma, samples, r2);
        double ratio = yg > 0 ? yt / yg : 0.0;
        std::printf("%-22.1f %12.5f %12.5f %7.1fx\n", precision, yt,
                    yg, ratio);
        if (yg > 0) {
            ratioAccum += ratio;
            ++ratioCount;
        }
    }
    rule();
    std::printf("mean XTree/Grid yield ratio: %.1fx   "
                "(paper: ~8x)\n",
                ratioCount ? ratioAccum / ratioCount : 0.0);

    // The other half of the co-design claim: the sparse tree that
    // fabricates ~8x more reliably is also the one the pipeline
    // compiles onto almost for free. Run the 50%-compressed LiH
    // spec through the Experiment facade with the verified MtR
    // preset as a sanity coda (one cheap SPSA step: the compiled
    // structure is parameter-independent).
    ExperimentResult res = Experiment::builder()
                               .molecule("LiH")
                               .compression(0.5)
                               .optimizer("spsa")
                               .spsaIter(1)
                               .reference(false)
                               .pipeline("mtr-verify")
                               .architecture("xtree17")
                               .build()
                               .run();
    std::printf("\nLiH@50%% on XTree17Q via facade: %zu gates, "
                "depth %zu, overhead %zu CNOTs, verified, "
                "%.1f ms\n",
                res.compiled.gates, res.compiled.depth,
                res.compiled.overheadCnots, res.compiled.millis);
    return 0;
}
