/**
 * @file
 * Figure 11 reproduction: fabrication yield of XTree17Q vs Grid17Q
 * as a function of fabrication precision. The paper's x-axis
 * (0.2-0.6 GHz) maps to per-qubit frequency sigma through the
 * documented calibration constant; yield is the collision-free
 * fraction of Monte-Carlo fabricated devices under the seven-
 * condition frequency-collision model with CR straddling.
 */

#include <cstdio>

#include "arch/grid.hh"
#include "arch/xtree.hh"
#include "arch/yield.hh"
#include "bench_util.hh"

using namespace qcc;
using namespace qccbench;

int
main()
{
    setVerbose(false);
    banner("Figure 11: yield rate, XTree17Q vs Grid17Q");

    const int samples = fullMode() ? 200000 : 20000;

    XTree tree = makeXTree(17);
    CouplingGraph grid = makeGrid17Q();
    auto fTree = allocateFrequencies(tree.graph);
    auto fGrid = allocateFrequencies(grid);

    std::printf("couplers: XTree17Q = %zu, Grid17Q = %zu\n\n",
                tree.graph.numEdges(), grid.numEdges());
    std::printf("%-22s %12s %12s %8s\n", "precision (GHz)",
                "XTree17Q", "Grid17Q", "ratio");
    rule();

    double ratioAccum = 0.0;
    int ratioCount = 0;
    for (double precision : {0.2, 0.3, 0.4, 0.5, 0.6}) {
        double sigma = precision * paperPrecisionToSigma;
        Rng r1(17), r2(17);
        double yt = simulateYield(tree.graph, fTree, sigma, samples,
                                  r1);
        double yg =
            simulateYield(grid, fGrid, sigma, samples, r2);
        double ratio = yg > 0 ? yt / yg : 0.0;
        std::printf("%-22.1f %12.5f %12.5f %7.1fx\n", precision, yt,
                    yg, ratio);
        if (yg > 0) {
            ratioAccum += ratio;
            ++ratioCount;
        }
    }
    rule();
    std::printf("mean XTree/Grid yield ratio: %.1fx   "
                "(paper: ~8x)\n",
                ratioCount ? ratioAccum / ratioCount : 0.0);
    return 0;
}
