/**
 * @file
 * Compiler-throughput microbenchmarks (google-benchmark): time to
 * compile compressed UCCSD programs with Merge-to-Root (including
 * the hierarchical layout) vs SABRE routing of chain circuits, plus
 * the pass-manager pipeline with and without the circuit cache.
 * The paper's complexity claim: MtR is O(n * #strings), so compile
 * time should scale linearly in program size and sit far below the
 * general-purpose router.
 *
 * After the registered benchmarks, a whole-Hamiltonian compile study
 * times per-term compilation of the LiH and H2O Hamiltonians over
 * repeated parameter bindings (a miniature VQE outer loop) in two
 * configurations — serial+uncached vs thread-pool-parallel+cached —
 * and writes the headline numbers to BENCH_compiler.json when
 * QCC_JSON is set.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>

#include "ansatz/compression.hh"
#include "ansatz/uccsd.hh"
#include "bench_util.hh"
#include "chem/molecules.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/merge_to_root.hh"
#include "compiler/pipeline.hh"
#include "compiler/sabre.hh"
#include "ferm/hamiltonian.hh"

using namespace qcc;

namespace {

struct Prepared
{
    Ansatz ansatz;
    Circuit chain;
    PauliSum hamiltonian;
};

/** Build the 50%-compressed program for one catalog molecule. */
const Prepared &
prepared(const std::string &name)
{
    static std::map<std::string, Prepared> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        setVerbose(false);
        const auto &entry = benchmarkMolecule(name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
        CompressedAnsatz comp =
            compressAnsatz(full, prob.hamiltonian, 0.5);
        std::vector<double> zeros(comp.ansatz.nParams, 0.0);
        Prepared p{comp.ansatz,
                   synthesizeChainCircuit(comp.ansatz, zeros, true),
                   prob.hamiltonian};
        it = cache.emplace(name, std::move(p)).first;
    }
    return it->second;
}

void
benchMtr(benchmark::State &state, const std::string &name)
{
    const Prepared &p = prepared(name);
    XTree tree = makeXTree(17);
    std::vector<double> zeros(p.ansatz.nParams, 0.0);
    for (auto _ : state) {
        MtrResult r = mergeToRootCompile(p.ansatz, zeros, tree);
        benchmark::DoNotOptimize(r.swapCount);
    }
    state.counters["strings"] = double(p.ansatz.numStrings());
}

void
benchSabre(benchmark::State &state, const std::string &name)
{
    const Prepared &p = prepared(name);
    XTree tree = makeXTree(17);
    for (auto _ : state) {
        SabreResult r = sabreCompile(
            p.chain, tree.graph,
            Layout::identity(p.chain.numQubits(), 17));
        benchmark::DoNotOptimize(r.swapCount);
    }
    state.counters["gates"] = double(p.chain.size());
}

/**
 * The pass-manager MtR flow. `cached` exercises the steady state of
 * a VQE loop: every iteration after the first hits the circuit
 * cache with fresh parameters, so the measured cost is the rebind.
 */
void
benchPipelineMtr(benchmark::State &state, const std::string &name,
                 bool cached)
{
    const Prepared &p = prepared(name);
    XTree tree = makeXTree(17);
    PipelineOptions o;
    o.useCache = cached;
    CompilerPipeline pipe(tree, o);
    std::vector<double> params(p.ansatz.nParams, 0.0);
    double bump = 0.0;
    for (auto _ : state) {
        if (!params.empty())
            params[0] = (bump += 1e-3); // new binding each iteration
        CompileResult r = pipe.compile(p.ansatz, params);
        benchmark::DoNotOptimize(r.swapCount);
    }
    state.counters["strings"] = double(p.ansatz.numStrings());
}

} // namespace

BENCHMARK_CAPTURE(benchMtr, LiH, std::string("LiH"));
BENCHMARK_CAPTURE(benchMtr, NaH, std::string("NaH"));
BENCHMARK_CAPTURE(benchMtr, BeH2, std::string("BeH2"));
BENCHMARK_CAPTURE(benchSabre, LiH, std::string("LiH"));
BENCHMARK_CAPTURE(benchSabre, NaH, std::string("NaH"));
BENCHMARK_CAPTURE(benchSabre, BeH2, std::string("BeH2"));
BENCHMARK_CAPTURE(benchPipelineMtr, LiH_uncached, std::string("LiH"),
                  false);
BENCHMARK_CAPTURE(benchPipelineMtr, LiH_cached, std::string("LiH"),
                  true);
BENCHMARK_CAPTURE(benchPipelineMtr, BeH2_uncached,
                  std::string("BeH2"), false);
BENCHMARK_CAPTURE(benchPipelineMtr, BeH2_cached, std::string("BeH2"),
                  true);

namespace {

/**
 * One first-order Trotter step of the whole Hamiltonian as a single
 * program: exp(i theta w_j P_j) for every term, theta the shared
 * parameter — the paper's Pauli-string IR applied to H itself.
 */
Ansatz
trotterProgram(const PauliSum &h)
{
    Ansatz a;
    a.nQubits = h.numQubits();
    a.nParams = 1;
    for (const auto &t : h.terms())
        a.rotations.push_back({0, t.coeff.real(), t.string});
    return a;
}

/**
 * Time `iters` compiles of the whole-Hamiltonian Trotter program
 * with a fresh theta per iteration (the VQE outer-loop access
 * pattern: same structure, new binding every energy evaluation).
 */
double
timeProgramCompiles(const CompilerPipeline &pipe, const Ansatz &prog,
                    int iters)
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) {
        CompileResult r = pipe.compile(prog, {0.1 + 0.01 * i});
        benchmark::DoNotOptimize(r.swapCount);
    }
    return std::chrono::duration<double, std::milli>(clock::now() -
                                                     t0)
        .count();
}

/** Same access pattern through the per-term fan-out path. */
double
timeTermCompiles(const CompilerPipeline &pipe, const PauliSum &h,
                 int iters)
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) {
        auto results = pipe.compileTerms(h, 0.1 + 0.01 * i);
        benchmark::DoNotOptimize(results.size());
    }
    return std::chrono::duration<double, std::milli>(clock::now() -
                                                     t0)
        .count();
}

/**
 * Whole-Hamiltonian compile study onto XTree17Q, serial+uncached vs
 * parallel+cached, in both granularities: the Trotter program
 * compiled as one circuit (cache rebinds dominate) and term-by-term
 * through the thread-pool fan-out (parallelism dominates on
 * multicore hosts; `threads` is recorded alongside).
 */
void
hamiltonianCompileStudy()
{
    using namespace qccbench;
    banner("whole-Hamiltonian compile: serial+uncached vs "
           "parallel+cached (MtR flow, XTree17Q)");

    JsonReport json("compiler");
    XTree tree = makeXTree(17);
    const int iters = fullMode() ? 8 : 4;
    const unsigned threads = parallelThreads();

    std::printf("%-12s %7s %6s %8s %16s %16s %8s\n", "workload",
                "terms", "iters", "threads", "serial+uncached",
                "parallel+cached", "speedup");
    rule();

    for (const char *name : {"LiH", "H2O"}) {
        const Prepared &p = prepared(name);
        const Ansatz prog = trotterProgram(p.hamiltonian);

        PipelineOptions serialOpts;
        serialOpts.parallelSynthesis = false;
        serialOpts.useCache = false;
        CompilerPipeline serialPipe(tree, serialOpts);
        CompilerPipeline parallelPipe(tree, PipelineOptions{});

        struct Variant
        {
            const char *suffix;
            bool perTerm;
        };
        for (const Variant &v :
             {Variant{"", false}, Variant{"_terms", true}}) {
            double serialMs =
                v.perTerm
                    ? timeTermCompiles(serialPipe, p.hamiltonian,
                                       iters)
                    : timeProgramCompiles(serialPipe, prog, iters);
            // Cache counters are global and cumulative; bracket the
            // cached run so the row reports only its own activity.
            const CacheStats before = globalCircuitCache().stats();
            double parallelMs =
                v.perTerm
                    ? timeTermCompiles(parallelPipe, p.hamiltonian,
                                       iters)
                    : timeProgramCompiles(parallelPipe, prog, iters);
            const CacheStats after = globalCircuitCache().stats();

            double speedup =
                parallelMs > 0 ? serialMs / parallelMs : 0;
            std::string label = std::string(name) + v.suffix;
            std::printf("%-12s %7zu %6d %8u %14.2fms %14.2fms "
                        "%7.2fx\n",
                        label.c_str(), p.hamiltonian.numTerms(),
                        iters, threads, serialMs, parallelMs,
                        speedup);
            json.row(label,
                     {{"terms", double(p.hamiltonian.numTerms())},
                      {"iters", double(iters)},
                      {"threads", double(threads)},
                      {"serial_uncached_ms", serialMs},
                      {"parallel_cached_ms", parallelMs},
                      {"speedup", speedup},
                      {"cache_hits", double(after.hits - before.hits)},
                      {"cache_rebinds",
                       double(after.rebinds - before.rebinds)}});
        }
    }
    rule();
    std::printf("parallel fan-out over common/parallel; cached "
                "iterations rebind RZ angles on memoized\n"
                "structures instead of re-running layout+routing "
                "(QCC_COMPILE_CACHE=0 disables).\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    hamiltonianCompileStudy();
    return 0;
}
