/**
 * @file
 * Compiler-throughput microbenchmarks (google-benchmark): time to
 * compile compressed UCCSD programs with Merge-to-Root (including
 * the hierarchical layout) vs SABRE routing of chain circuits.
 * The paper's complexity claim: MtR is O(n * #strings), so compile
 * time should scale linearly in program size and sit far below the
 * general-purpose router.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "ansatz/compression.hh"
#include "common/logging.hh"
#include "ansatz/uccsd.hh"
#include "chem/molecules.hh"
#include "compiler/chain_synthesis.hh"
#include "compiler/merge_to_root.hh"
#include "compiler/sabre.hh"
#include "ferm/hamiltonian.hh"

using namespace qcc;

namespace {

struct Prepared
{
    Ansatz ansatz;
    Circuit chain;
};

/** Build the 50%-compressed program for one catalog molecule. */
const Prepared &
prepared(const std::string &name)
{
    static std::map<std::string, Prepared> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        setVerbose(false);
        const auto &entry = benchmarkMolecule(name);
        MolecularProblem prob =
            buildMolecularProblem(entry, entry.equilibriumBond);
        Ansatz full = buildUccsd(prob.nSpatial, prob.nElectrons);
        CompressedAnsatz comp =
            compressAnsatz(full, prob.hamiltonian, 0.5);
        std::vector<double> zeros(comp.ansatz.nParams, 0.0);
        Prepared p{comp.ansatz,
                   synthesizeChainCircuit(comp.ansatz, zeros, true)};
        it = cache.emplace(name, std::move(p)).first;
    }
    return it->second;
}

void
benchMtr(benchmark::State &state, const std::string &name)
{
    const Prepared &p = prepared(name);
    XTree tree = makeXTree(17);
    std::vector<double> zeros(p.ansatz.nParams, 0.0);
    for (auto _ : state) {
        MtrResult r = mergeToRootCompile(p.ansatz, zeros, tree);
        benchmark::DoNotOptimize(r.swapCount);
    }
    state.counters["strings"] = double(p.ansatz.numStrings());
}

void
benchSabre(benchmark::State &state, const std::string &name)
{
    const Prepared &p = prepared(name);
    XTree tree = makeXTree(17);
    for (auto _ : state) {
        SabreResult r = sabreCompile(
            p.chain, tree.graph,
            Layout::identity(p.chain.numQubits(), 17));
        benchmark::DoNotOptimize(r.swapCount);
    }
    state.counters["gates"] = double(p.chain.size());
}

} // namespace

BENCHMARK_CAPTURE(benchMtr, LiH, std::string("LiH"));
BENCHMARK_CAPTURE(benchMtr, NaH, std::string("NaH"));
BENCHMARK_CAPTURE(benchMtr, BeH2, std::string("BeH2"));
BENCHMARK_CAPTURE(benchSabre, LiH, std::string("LiH"));
BENCHMARK_CAPTURE(benchSabre, NaH, std::string("NaH"));
BENCHMARK_CAPTURE(benchSabre, BeH2, std::string("BeH2"));

BENCHMARK_MAIN();
